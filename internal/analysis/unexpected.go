package analysis

import (
	"sort"
	"time"

	"github.com/neu-sns/intl-iot-go/internal/experiments"
	"github.com/neu-sns/intl-iot-go/internal/features"
	"github.com/neu-sns/intl-iot-go/internal/ml"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

// Detector applies the §7.1 methodology: train per-device activity
// models on labelled data, keep only highly accurate ones (F1 > 0.9
// under cross-validation), segment unlabelled traffic into traffic units
// (> 2 s gaps), and classify each sufficiently large unit.
type Detector struct {
	// Gap is the traffic-unit segmentation threshold (default 2 s).
	Gap time.Duration
	// MinUnitPackets filters units too small to classify; heartbeat
	// flows (8–10 packets with TCP framing) and NTP blips fall below it,
	// while even the smallest real interaction spans several flows.
	MinUnitPackets int
	// MinVote is the forest vote share required to accept a prediction.
	MinVote float64
	// FeatureSet must match the models' training features.
	FeatureSet features.Set

	models map[instColKey]*deviceModel
}

type deviceModel struct {
	forest *ml.Forest
	f1     float64
	// envelopes maps each class to the per-feature [min, max] range seen
	// in training, used to reject out-of-distribution traffic units
	// (background heartbeats do not belong to any trained class; without
	// this check a forest confidently mislabels them — the reason the
	// paper only identifies 21–69% of traffic units, §7.1).
	envelopes map[string][][2]float64
}

// envelopeMargin widens training ranges to tolerate sampling noise.
const envelopeMargin = 0.35

// envelopeMinFrac is the fraction of features that must fall inside the
// predicted class's envelope for a detection to count.
const envelopeMinFrac = 0.85

func buildEnvelopes(ds *ml.Dataset) map[string][][2]float64 {
	env := make(map[string][][2]float64)
	for i, row := range ds.Features {
		label := ds.Labels[i]
		e := env[label]
		if e == nil {
			e = make([][2]float64, len(row))
			for j, v := range row {
				e[j] = [2]float64{v, v}
			}
			env[label] = e
			continue
		}
		for j, v := range row {
			if v < e[j][0] {
				e[j][0] = v
			}
			if v > e[j][1] {
				e[j][1] = v
			}
		}
	}
	return env
}

// withinEnvelope reports whether x matches the class envelope closely
// enough to be a plausible member.
func (m *deviceModel) withinEnvelope(label string, x []float64) bool {
	e, ok := m.envelopes[label]
	if !ok || len(e) != len(x) {
		return false
	}
	inside := 0
	for j, v := range x {
		lo, hi := e[j][0], e[j][1]
		span := hi - lo
		margin := span*envelopeMargin + 1e-9
		if span == 0 {
			// Constant feature: allow proportional slack.
			margin = absF(lo)*envelopeMargin + 1e-9
		}
		if v >= lo-margin && v <= hi+margin {
			inside++
		}
	}
	return float64(inside) >= envelopeMinFrac*float64(len(x))
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// NewDetector trains detectors from a content collector's datasets using
// the given inference results to select high-accuracy models. Model
// training fans out across cfg.Workers goroutines; each model is a pure
// function of its dataset and the CV seed, so the detector is identical
// for any worker count.
func NewDetector(c *ContentCollector, results []InferenceResult, cfg InferConfig) *Detector {
	d := &Detector{
		Gap:            features.DefaultUnitGap,
		MinUnitPackets: 12,
		MinVote:        0.6,
		FeatureSet:     c.FeatureSet,
		models:         make(map[instColKey]*deviceModel),
	}
	type pick struct {
		r  InferenceResult
		ds *ml.Dataset
	}
	var picks []pick
	for _, r := range results {
		if r.DeviceF1 <= HighAccuracyThreshold {
			continue
		}
		ds := c.Dataset(r.DeviceID, r.Column)
		if ds == nil {
			continue
		}
		picks = append(picks, pick{r, ds})
	}
	models := make([]*deviceModel, len(picks))
	fcfg := cfg.CV.Forest
	fcfg.Seed = cfg.CV.Seed
	fcfg.Workers = 1 // the models already saturate the worker pool
	parallelFor(len(picks), workerCount(cfg.Workers), func(i int) {
		models[i] = &deviceModel{
			forest:    ml.TrainForest(picks[i].ds, fcfg),
			f1:        picks[i].r.DeviceF1,
			envelopes: buildEnvelopes(picks[i].ds),
		}
	})
	for i, p := range picks {
		d.models[instColKey{p.r.DeviceID, p.r.Column}] = models[i]
	}
	return d
}

// HasModel reports whether a high-accuracy model exists for the device
// in a column.
func (d *Detector) HasModel(deviceID, column string) bool {
	_, ok := d.models[instColKey{deviceID, column}]
	return ok
}

// ModelCount is the number of deployed models.
func (d *Detector) ModelCount() int { return len(d.models) }

// Detection is one inferred activity instance in unlabelled traffic.
type Detection struct {
	DeviceID   string
	DeviceName string
	Column     string
	Activity   string // predicted label, e.g. "local_move"
	Start      time.Time
	End        time.Time
}

// unitStats tracks traffic-unit classification coverage (§7.1 reports
// that 21–69% of units were identified).
type unitStats struct {
	Total      int
	Classified int
}

// DetectResult aggregates detections over a set of experiments.
type DetectResult struct {
	Detections []Detection
	// Counts maps (device name, activity, column) to the number of
	// detected instances — Table 11's cells.
	Counts map[DetectKey]int
	// Units tracks per-column unit coverage.
	Units map[string]*unitStats
	// Hours is the wall-clock idle time analysed per column (Table 11's
	// first row): the maximum per-device accumulation, since devices are
	// captured in parallel.
	Hours map[string]float64
	// deviceHours accumulates per (column, device) to derive Hours.
	deviceHours map[string]map[string]float64
	// tagged buffers shard-local detections with their experiment's
	// delivery sequence; finalize re-interleaves them into Detections in
	// delivery order. Serial visits append to Detections directly and
	// never populate it.
	tagged []taggedDetection
}

type taggedDetection struct {
	seq int64
	det Detection
}

// DetectKey identifies a Table 11 cell.
type DetectKey struct {
	Device   string
	Activity string
	Column   string
}

// NewDetectResult returns an empty result.
func NewDetectResult() *DetectResult {
	return &DetectResult{
		Counts:      make(map[DetectKey]int),
		Units:       make(map[string]*unitStats),
		Hours:       make(map[string]float64),
		deviceHours: make(map[string]map[string]float64),
	}
}

// VisitIdle classifies one idle experiment's traffic.
func (d *Detector) VisitIdle(exp *testbed.Experiment, res *DetectResult) {
	d.visitIdleAt(-1, exp, res)
}

// visitIdleAt is VisitIdle with an explicit delivery sequence. A
// non-negative seq tags each detection for later re-interleaving
// (sharded stages call finalize after merging); seq -1 appends directly,
// which is the serial path.
func (d *Detector) visitIdleAt(seq int64, exp *testbed.Experiment, res *DetectResult) {
	model, ok := d.models[instColKey{exp.Device.ID(), exp.Column}]
	if !ok {
		return
	}
	if res.deviceHours[exp.Column] == nil {
		res.deviceHours[exp.Column] = map[string]float64{}
	}
	res.deviceHours[exp.Column][exp.Device.ID()] += exp.End.Sub(exp.Start).Hours()
	if h := res.deviceHours[exp.Column][exp.Device.ID()]; h > res.Hours[exp.Column] {
		res.Hours[exp.Column] = h
	}
	us := res.Units[exp.Column]
	if us == nil {
		us = &unitStats{}
		res.Units[exp.Column] = us
	}
	for _, unit := range features.Segment(exp.Packets, d.Gap) {
		us.Total++
		if len(unit.Packets) < d.MinUnitPackets {
			continue
		}
		vec := features.Vector(unit.Packets, d.FeatureSet)
		label, vote := model.forest.PredictTop(vec)
		if vote < d.MinVote || !model.withinEnvelope(label, vec) {
			continue
		}
		us.Classified++
		det := Detection{
			DeviceID: exp.Device.ID(), DeviceName: exp.Device.Profile.Name,
			Column: exp.Column, Activity: label,
			Start: unit.Start, End: unit.End,
		}
		if seq >= 0 {
			res.tagged = append(res.tagged, taggedDetection{seq, det})
		} else {
			res.Detections = append(res.Detections, det)
		}
		res.Counts[DetectKey{exp.Device.Profile.Name, label, exp.Column}]++
	}
}

// merge folds a shard's result into r: counts and unit totals add,
// per-device hours add over disjoint devices (experiments route by
// device), per-column Hours takes the max — each device's full
// accumulation lives on one shard, so the max over shard maxima equals
// the serial running max. Tagged detections concatenate; finalize
// re-interleaves them.
func (r *DetectResult) merge(o *DetectResult) {
	r.tagged = append(r.tagged, o.tagged...)
	for k, n := range o.Counts {
		r.Counts[k] += n
	}
	for col, us := range o.Units {
		cur := r.Units[col]
		if cur == nil {
			r.Units[col] = us
			continue
		}
		cur.Total += us.Total
		cur.Classified += us.Classified
	}
	for col, devs := range o.deviceHours {
		cur := r.deviceHours[col]
		if cur == nil {
			r.deviceHours[col] = devs
			continue
		}
		for dev, h := range devs {
			cur[dev] += h
		}
	}
	for col, h := range o.Hours {
		if h > r.Hours[col] {
			r.Hours[col] = h
		}
	}
}

// finalize moves tagged detections into Detections in delivery order.
// The sort is stable so the within-experiment unit order each shard
// produced survives; serial runs have nothing tagged and skip out.
func (r *DetectResult) finalize() {
	if len(r.tagged) == 0 {
		return
	}
	sort.SliceStable(r.tagged, func(i, j int) bool { return r.tagged[i].seq < r.tagged[j].seq })
	for _, td := range r.tagged {
		r.Detections = append(r.Detections, td.det)
	}
	r.tagged = nil
}

// Table11Row is one row of Table 11.
type Table11Row struct {
	Device   string
	Activity string
	Counts   map[string]int // column → instances
}

// Table11 renders the detection counts as rows sorted by total
// detections, dropping rows below minInstances (the paper hides rows
// with fewer than 3).
func (r *DetectResult) Table11(minInstances int) []Table11Row {
	type rowKey struct{ dev, act string }
	rows := map[rowKey]map[string]int{}
	for k, n := range r.Counts {
		rk := rowKey{k.Device, k.Activity}
		if rows[rk] == nil {
			rows[rk] = map[string]int{}
		}
		rows[rk][k.Column] += n
	}
	var out []Table11Row
	for rk, counts := range rows {
		maxCell := 0
		for _, n := range counts {
			if n > maxCell {
				maxCell = n
			}
		}
		if maxCell < minInstances {
			continue
		}
		out = append(out, Table11Row{Device: rk.dev, Activity: rk.act, Counts: counts})
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := 0, 0
		for _, n := range out[i].Counts {
			ti += n
		}
		for _, n := range out[j].Counts {
			tj += n
		}
		if ti != tj {
			return ti > tj
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Activity < out[j].Activity
	})
	return out
}

// UnexpectedFinding is a §7.3 case: a detected sensitive activity with no
// intended interaction nearby in the ground truth.
type UnexpectedFinding struct {
	Device    string
	Activity  string
	Instances int
}

// VisitUncontrolled classifies one user-study capture and checks each
// detection against ground truth; detections of non-intended activity
// are unexpected behaviour.
func (d *Detector) VisitUncontrolled(res *experiments.UncontrolledResult, out *DetectResult, unexpected map[string]int) {
	exp := res.Experiment
	model, ok := d.models[instColKey{exp.Device.ID(), exp.Column}]
	if !ok {
		return
	}
	for _, unit := range features.Segment(exp.Packets, d.Gap) {
		if len(unit.Packets) < d.MinUnitPackets {
			continue
		}
		vec := features.Vector(unit.Packets, d.FeatureSet)
		label, vote := model.forest.PredictTop(vec)
		if vote < d.MinVote || !model.withinEnvelope(label, vec) {
			continue
		}
		out.Counts[DetectKey{exp.Device.Profile.Name, label, "uncontrolled"}]++
		// Compare with ground truth: an intended interaction within ±30 s
		// explains the detection; anything else is unexpected.
		explained := false
		for _, gt := range res.Truth {
			if !gt.Intended {
				continue
			}
			if absDur(gt.Time.Sub(unit.Start)) < 30*time.Second {
				explained = true
				break
			}
		}
		if !explained {
			unexpected[exp.Device.Profile.Name+"|"+activityBase(label)]++
		}
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
