package analysis

import (
	"time"

	"github.com/neu-sns/intl-iot-go/internal/experiments"
	"github.com/neu-sns/intl-iot-go/internal/features"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

// Single-decode streaming support.
//
// A Source that also implements singleDecodeSource can push the whole
// campaign through the pipeline during its decode (index) pass instead
// of replaying a second decode per leg. Experiments arrive out of
// campaign order — whichever file a decode worker finishes first — so
// the collectors absorb them through the fold contract
// (internal/experiments.FoldSink): each contiguous run of a leg folds
// into a private accumulator on the worker that decoded it, and the
// accumulators merge serially in campaign order afterwards. Every
// table stays byte-identical to the buffered serial pipeline because
//
//   - device-local, order-sensitive state (DNS replay caches, Welch
//     samples, idle hours) sees the serial order within each run, and
//     runs merge in the serial order;
//   - cross-run DNS label resolution is deferred: a fold unit that
//     cannot resolve an address against its own run's answers parks the
//     flow, and mergeFold resolves it against exactly the answers a
//     serial replay would have seen (dest.go);
//   - sequence-tagged rows (PII findings, identification rows) carry
//     unit-local sequences that MergeFoldUnit rebases onto the global
//     campaign sequence;
//   - idle-leg detection needs models that only exist after the
//     controlled leg trains, so fold units capture each idle
//     experiment's traffic units (segmented and vectorized exactly as
//     Detector.VisitIdle would) and replayIdleDetections re-runs the
//     classification in campaign order once the models exist.
type singleDecodeSource interface {
	Source
	// SingleDecode reports whether the source can still run a fold pass
	// (streaming enabled, legacy two-pass not forced, no replay pass
	// already prepared).
	SingleDecode() bool
	// RunSingleDecode decodes every file once, folding experiments into
	// sink units as they decode and merging them in campaign order. It
	// returns the controlled- and idle-leg statistics.
	RunSingleDecode(experiments.FoldSink) (ctl, idle experiments.Stats)
}

// foldSink adapts the pipeline's collectors to the fold contract.
// MergeFoldUnit is called serially (contract), so the running global
// sequence and the idle capture list need no locking.
type foldSink struct {
	p *Pipeline
	// ctlSeq is the global controlled-leg delivery sequence: the number
	// of controlled experiments merged so far. Unit-local row sequences
	// rebase onto it.
	ctlSeq int64
	// idle accumulates captured idle experiments in campaign order for
	// post-training detection replay.
	idle []idleFoldExp
}

func (s *foldSink) NewFoldUnit(controlled bool) experiments.FoldUnit {
	u := &foldUnit{
		p:          s.p,
		controlled: controlled,
		dest:       s.p.Dest.newFoldUnit(),
		enc:        s.p.Enc.newShard(),
	}
	if controlled {
		u.content = s.p.Content.newShard()
		u.identify = s.p.Identify.newShard()
	}
	return u
}

func (s *foldSink) MergeFoldUnit(controlled bool, unit experiments.FoldUnit) {
	u := unit.(*foldUnit)
	p := s.p
	p.Dest.mergeFold(u.dest)
	p.Enc.merge(u.enc)
	if controlled {
		p.Content.mergeFold(u.content, s.ctlSeq, u.count)
		p.Identify.mergeFold(u.identify, s.ctlSeq, u.count)
		s.ctlSeq += u.count
	} else {
		s.idle = append(s.idle, u.idle...)
	}
}

// foldUnit accumulates one contiguous run of a leg. It is goroutine-
// confined by the fold contract, so the collectors inside need no
// synchronization beyond what shard collectors already have.
type foldUnit struct {
	p          *Pipeline
	controlled bool
	// count is the number of experiments folded; doubles as the
	// unit-local delivery sequence for visitAt.
	count    int64
	dest     *DestCollector
	enc      *EncCollector
	content  *ContentCollector
	identify *IdentifyCollector
	// idle captures idle experiments for post-training replay.
	idle []idleFoldExp
}

func (u *foldUnit) Fold(exp *testbed.Experiment) {
	if u.p.canceled() {
		exp.Done()
		return
	}
	u.p.degradeExp(exp)
	u.dest.Visit(exp)
	u.enc.Visit(exp)
	if u.controlled {
		u.content.visitAt(u.count, exp)
		u.identify.visitAt(u.count, exp)
	} else {
		u.captureIdle(exp)
	}
	u.count++
	exp.Done()
}

// idleFoldExp is one idle experiment reduced to what detection replay
// needs: identity, wall-clock extent, and its traffic units already
// segmented and vectorized from the degraded packets.
type idleFoldExp struct {
	devID, devName, column string
	start, end             time.Time
	units                  []idleFoldUnit
}

type idleFoldUnit struct {
	packets    int
	start, end time.Time
	vec        []float64
}

// captureIdle records the experiment for replayIdleDetections. The gap
// and feature set must match what NewDetector will configure —
// features.DefaultUnitGap and the content collector's feature set —
// so the vectors are exactly the ones Detector.VisitIdle would compute.
// Vectors are computed for every unit, even ones the MinUnitPackets
// filter will later drop: the detector's thresholds are unknown until
// training finishes, and the packets are gone after this fold.
func (u *foldUnit) captureIdle(exp *testbed.Experiment) {
	ie := idleFoldExp{
		devID:   exp.Device.ID(),
		devName: exp.Device.Profile.Name,
		column:  exp.Column,
		start:   exp.Start,
		end:     exp.End,
	}
	fs := u.p.Content.FeatureSet
	for _, unit := range features.Segment(exp.Packets, features.DefaultUnitGap) {
		ie.units = append(ie.units, idleFoldUnit{
			packets: len(unit.Packets),
			start:   unit.Start,
			end:     unit.End,
			vec:     features.Vector(unit.Packets, fs),
		})
	}
	u.idle = append(u.idle, ie)
}

// replayIdleDetections re-runs Detector.visitIdleAt's logic over the
// captured idle experiments, in campaign order, mirroring its
// accounting exactly: the model lookup gates all accounting, hours and
// unit totals accrue per experiment, and detections append directly in
// replay order (which is campaign order, the serial order).
func (p *Pipeline) replayIdleDetections(idle []idleFoldExp) {
	d := p.Detector
	res := p.IdleHits
	for i := range idle {
		if p.canceled() {
			return
		}
		ie := &idle[i]
		model, ok := d.models[instColKey{ie.devID, ie.column}]
		if !ok {
			continue
		}
		if res.deviceHours[ie.column] == nil {
			res.deviceHours[ie.column] = map[string]float64{}
		}
		res.deviceHours[ie.column][ie.devID] += ie.end.Sub(ie.start).Hours()
		if h := res.deviceHours[ie.column][ie.devID]; h > res.Hours[ie.column] {
			res.Hours[ie.column] = h
		}
		us := res.Units[ie.column]
		if us == nil {
			us = &unitStats{}
			res.Units[ie.column] = us
		}
		for _, u := range ie.units {
			us.Total++
			if u.packets < d.MinUnitPackets {
				continue
			}
			label, vote := model.forest.PredictTop(u.vec)
			if vote < d.MinVote || !model.withinEnvelope(label, u.vec) {
				continue
			}
			us.Classified++
			res.Detections = append(res.Detections, Detection{
				DeviceID: ie.devID, DeviceName: ie.devName,
				Column: ie.column, Activity: label,
				Start: u.start, End: u.end,
			})
			res.Counts[DetectKey{ie.devName, label, ie.column}]++
		}
	}
}

// runSingleDecode is Run's body when the source folds the campaign in
// its decode pass. Both legs decode in one pass (capture files carry
// controlled and idle windows side by side), so the controlled/idle
// stage split collapses into fold + train + idle-replay.
func (p *Pipeline) runSingleDecode(src singleDecodeSource, cfg InferConfig) {
	sink := &foldSink{p: p}
	span := p.metrics.StartSpan("stage:fold")
	p.Stats, p.IdleStats = src.RunSingleDecode(sink)
	span.End()
	if p.abortIfCanceled() {
		return
	}

	span = p.metrics.StartSpan("stage:train")
	p.metrics.SetLabel("stage", "train")
	p.Inference = p.Content.Infer(cfg)
	p.Detector = NewDetector(p.Content, p.Inference, cfg)
	span.End()
	if p.abortIfCanceled() {
		return
	}

	p.IdleHits = NewDetectResult()
	span = p.metrics.StartSpan("stage:idle")
	p.replayIdleDetections(sink.idle)
	span.End()
	p.abortIfCanceled()
}
