package analysis

import (
	"time"

	"github.com/neu-sns/intl-iot-go/internal/netx"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

// DHCP log cross-checking (§7.2): "The large number of 'power' activities
// is due to devices that frequently disconnect and reconnect to the Wi-Fi
// network (which we verified using DHCP server logs)." The gateway's DHCP
// server sees a DISCOVER whenever a device rejoins; matching those events
// against power detections separates benign reconnects from genuinely
// unexpected behaviour.

// DHCPEvent is one lease negotiation observed at the gateway.
type DHCPEvent struct {
	MAC  netx.MAC
	Time time.Time
}

// ExtractDHCPLog recovers the gateway's DHCP server log from a capture:
// every DHCPDISCOVER (BOOTP op 1, option 53 = 1) is a (re)join.
func ExtractDHCPLog(pkts []*netx.Packet) []DHCPEvent {
	var out []DHCPEvent
	for _, p := range pkts {
		if p.UDP == nil || p.UDP.DstPort != 67 || len(p.Payload) < 244 {
			continue
		}
		if p.Payload[0] != 1 { // BOOTREQUEST
			continue
		}
		// Option 53 at the fixed offset our generator (and most real
		// clients) uses; fall back to a scan for robustness.
		if !(p.Payload[240] == 53 && p.Payload[242] == 1) && !hasDiscoverOption(p.Payload[240:]) {
			continue
		}
		var mac netx.MAC
		copy(mac[:], p.Payload[28:34])
		out = append(out, DHCPEvent{MAC: mac, Time: p.Meta.Timestamp})
	}
	return out
}

func hasDiscoverOption(opts []byte) bool {
	for i := 0; i+2 < len(opts); {
		code := opts[i]
		if code == 255 {
			return false
		}
		if code == 0 {
			i++
			continue
		}
		n := int(opts[i+1])
		if code == 53 && n == 1 && i+2 < len(opts) && opts[i+2] == 1 {
			return true
		}
		i += 2 + n
	}
	return false
}

// ExplainedPowerDetections splits a result's power detections into those
// explained by a DHCP rejoin within the window and the unexplained rest.
// The paper treats explained power activity as "not unexpected or
// suspicious" (§7.2).
func ExplainedPowerDetections(res *DetectResult, log []DHCPEvent, window time.Duration, macOf func(deviceID string) (netx.MAC, bool)) (explained, unexplained int) {
	for _, det := range res.Detections {
		if activityBase(det.Activity) != "power" {
			continue
		}
		mac, ok := macOf(det.DeviceID)
		if !ok {
			unexplained++
			continue
		}
		found := false
		for _, ev := range log {
			if ev.MAC != mac {
				continue
			}
			d := det.Start.Sub(ev.Time)
			if d < 0 {
				d = -d
			}
			if d <= window {
				found = true
				break
			}
		}
		if found {
			explained++
		} else {
			unexplained++
		}
	}
	return explained, unexplained
}

// CollectDHCPLog accumulates the log across a set of experiments.
func CollectDHCPLog(exps []*testbed.Experiment) []DHCPEvent {
	var out []DHCPEvent
	for _, e := range exps {
		out = append(out, ExtractDHCPLog(e.Packets)...)
	}
	return out
}
