package analysis

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/neu-sns/intl-iot-go/internal/cloud"
	"github.com/neu-sns/intl-iot-go/internal/experiments"
	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

// replaySource feeds a pre-synthesized experiment list through the Source
// interface, so collector benchmarks time analysis alone, not synthesis.
type replaySource struct {
	internet *cloud.Internet
	exps     []*testbed.Experiment
	stats    experiments.Stats
}

func (s *replaySource) Internet() *cloud.Internet { return s.internet }
func (s *replaySource) SetObs(*obs.Registry)      {}
func (s *replaySource) RunIdle(experiments.Visitor) experiments.Stats {
	return experiments.Stats{}
}
func (s *replaySource) RunControlled(visit experiments.Visitor) experiments.Stats {
	for _, exp := range s.exps {
		visit(exp)
	}
	return s.stats
}

// BenchmarkCollectorStage measures the controlled collector stage —
// degrade + dest + enc + content + identify over every experiment —
// serial vs sharded. Both paths produce byte-identical collector state
// (TestShardedPipelineMatchesSerial); the pair quantifies the speedup.
func BenchmarkCollectorStage(b *testing.B) {
	r, err := experiments.NewRunner(experiments.Config{
		Seed: 1, AutomatedReps: 4, ManualReps: 1, PowerReps: 1, VPN: true,
		Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := &replaySource{internet: r.Internet()}
	src.stats = r.RunControlled(func(exp *testbed.Experiment) {
		src.exps = append(src.exps, exp)
	})

	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportMetric(float64(len(src.exps)), "experiments")
			for i := 0; i < b.N; i++ {
				p := NewPipeline(src)
				if w > 1 {
					p.runShardedStage("controlled", w, true, src.RunControlled)
					continue
				}
				src.RunControlled(func(exp *testbed.Experiment) {
					p.degradeExp(exp)
					p.Dest.Visit(exp)
					p.Enc.Visit(exp)
					p.Content.Visit(exp)
					p.Identify.Visit(exp)
				})
			}
		})
	}
}
