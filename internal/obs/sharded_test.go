package obs

import (
	"sync"
	"testing"
)

func TestShardedCounterDeterministicTotal(t *testing.T) {
	const shards, perShard = 8, 1000
	sc := NewShardedCounter(shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				sc.Inc(w)
			}
			sc.Add(w, 2)
		}(w)
	}
	wg.Wait()
	want := int64(shards * (perShard + 2))
	if got := sc.Total(); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	if got := sc.ShardValue(3); got != perShard+2 {
		t.Fatalf("ShardValue(3) = %d, want %d", got, perShard+2)
	}

	c := &Counter{}
	if got := sc.FlushTo(c); got != want {
		t.Fatalf("FlushTo = %d, want %d", got, want)
	}
	if c.Value() != want {
		t.Fatalf("flushed counter = %d, want %d", c.Value(), want)
	}
	if sc.Total() != 0 {
		t.Fatalf("slots not zeroed after flush: %d", sc.Total())
	}
}

func TestShardedCounterNilSafe(t *testing.T) {
	var sc *ShardedCounter
	sc.Inc(0)
	sc.Add(2, 5)
	if sc.Total() != 0 || sc.Shards() != 0 || sc.ShardValue(0) != 0 {
		t.Fatal("nil ShardedCounter not inert")
	}
	if sc.FlushTo(nil) != 0 {
		t.Fatal("nil FlushTo not inert")
	}
	// Out-of-range shards fold into slot 0 rather than dropping.
	real := NewShardedCounter(2)
	real.Inc(-1)
	real.Inc(7)
	if real.ShardValue(0) != 2 {
		t.Fatalf("out-of-range increments lost: slot0 = %d", real.ShardValue(0))
	}
}
