package obs

import (
	"net/http"
)

// Handler returns an http.Handler that serves point-in-time snapshots of
// the registry: indented JSON by default (the same shape WriteJSONFile
// writes), or the human-readable text report with ?format=text. The
// moniotrd daemon mounts it at /api/v1/metrics; it is also handy under
// net/http/pprof-style debug muxes in long-running tools.
//
// A nil registry serves empty snapshots, keeping the endpoint total even
// when observability is disabled.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	})
}
