package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Snapshot is a point-in-time copy of a registry's metrics, shaped for
// serialization. Map keys serialize in sorted order (encoding/json) and
// spans appear in start order, so two snapshots of identical campaigns
// diff cleanly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Labels     map[string]string            `json:"labels,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// HistogramSnapshot is one histogram's state. Counts has one more entry
// than Bounds: the final slot counts observations above the last bound.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count (0 for an empty histogram).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// SpanSnapshot is one stage timing. Running marks spans not yet ended at
// snapshot time; their Seconds reflect time elapsed so far.
type SpanSnapshot struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Running bool    `json:"running,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.labels) > 0 {
		s.Labels = make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			s.Labels[k] = v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			h.mu.Lock()
			hs := HistogramSnapshot{
				Count:  h.count,
				Sum:    h.sum,
				Min:    h.min,
				Max:    h.max,
				Bounds: append([]float64(nil), h.bounds...),
				Counts: append([]int64(nil), h.counts...),
			}
			h.mu.Unlock()
			if hs.Count == 0 {
				hs.Min, hs.Max = 0, 0
			}
			s.Histograms[k] = hs
		}
	}
	for _, sp := range r.spans {
		ss := SpanSnapshot{Name: sp.name}
		if sp.done {
			ss.Seconds = sp.dur.Seconds()
		} else {
			ss.Seconds = r.now().Sub(sp.start).Seconds()
			ss.Running = true
		}
		s.Spans = append(s.Spans, ss)
	}
	return s
}

// WriteJSON serializes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as a human-readable report.
func (s Snapshot) WriteText(w io.Writer) error {
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, "stages:\n")
		for _, sp := range s.Spans {
			mark := ""
			if sp.Running {
				mark = " (running)"
			}
			fmt.Fprintf(w, "  %-32s %10.3fs%s\n", sp.Name, sp.Seconds, mark)
		}
	}
	writeSorted(w, "labels", s.Labels, func(v string) string { return v })
	writeSorted(w, "counters", s.Counters, func(v int64) string { return fmt.Sprintf("%d", v) })
	writeSorted(w, "gauges", s.Gauges, func(v float64) string { return fmt.Sprintf("%g", v) })
	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "histograms:\n")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			fmt.Fprintf(w, "  %-32s n=%d mean=%g min=%g max=%g\n", k, h.Count, h.Mean(), h.Min, h.Max)
		}
	}
	return nil
}

// WriteJSONFile snapshots the registry and writes it to path; the
// convenience the CLIs and benchmarks use. No-op on a nil registry.
func (r *Registry) WriteJSONFile(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeSorted[V any](w io.Writer, title string, m map[string]V, render func(V) string) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(w, "%s:\n", title)
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(w, "  %-32s %s\n", k, render(m[k]))
	}
}
