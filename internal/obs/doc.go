// Package obs is the measurement pipeline's observability layer: a
// dependency-free metrics registry (counters, gauges, histograms with
// fixed bucket layouts, string labels), a span-style stage timer, and
// JSON/text exporters.
//
// The paper's campaign (§3.3) spans 34,586 controlled experiments plus
// weeks of idle and user-study captures; this package is how the
// reproduction reports where that time and volume go — per-stage wall
// times in analysis.Pipeline, per-leg synthesis latency and worker
// utilization in experiments.Runner, packets/bytes synthesized in
// testbed, and DNS/connection counts in cloud.
//
// Every method is nil-safe: a nil *Registry (and the nil *Counter,
// *Gauge, *Histogram and *Span values it hands out) turns the entire
// layer into no-ops, so instrumented hot paths cost a nil check when
// metrics are disabled. All mutating operations are safe for concurrent
// use; the parallel experiment runner updates counters from many worker
// goroutines at once.
//
// Instrumented code takes a *Registry explicitly where a natural
// injection point exists (Runner, Pipeline, Lab, Internet). Package-level
// functions with no such point (testbed's pcap round-trip) consult the
// process-wide Default registry, which is nil until a CLI or benchmark
// opts in via SetDefault.
package obs
