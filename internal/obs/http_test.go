package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total").Add(3)
	reg.Gauge("queue_depth").Set(2)
	reg.SetLabel("stage", "idle")

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["jobs_total"] != 3 || snap.Gauges["queue_depth"] != 2 || snap.Labels["stage"] != "idle" {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestHandlerText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("http_requests_total").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/metrics?format=text", nil))
	if !strings.Contains(rec.Body.String(), "http_requests_total") {
		t.Fatalf("text snapshot missing counter:\n%s", rec.Body.String())
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	var reg *Registry
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := strings.TrimSpace(rec.Body.String()); got != "{}" {
		t.Fatalf("nil registry served %q", got)
	}
}
