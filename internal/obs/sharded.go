package obs

import "sync/atomic"

// ShardedCounter spreads a hot counter across per-worker slots so that N
// workers incrementing concurrently never contend on one cache line. The
// aggregate is deterministic: integer addition commutes, so Total and
// FlushTo return the exact same value regardless of how worker updates
// interleaved — the property the parallel analysis stage relies on to
// keep its metrics snapshot byte-identical to a serial run.
//
// Like the rest of the package, a nil *ShardedCounter is valid and makes
// every operation a no-op, so instrumented shard code stays zero-cost
// when observability is off.
type ShardedCounter struct {
	slots []paddedCounter
}

// paddedCounter pads each slot out to a 64-byte cache line so adjacent
// shards never false-share.
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// NewShardedCounter returns a counter with one slot per shard.
func NewShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{slots: make([]paddedCounter, shards)}
}

// Shards returns the slot count (0 on nil).
func (s *ShardedCounter) Shards() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// Add adds n to the given shard's slot. Out-of-range shards fold into
// slot 0 so a miscounted caller loses no increments. No-op on nil.
func (s *ShardedCounter) Add(shard int, n int64) {
	if s == nil {
		return
	}
	if shard < 0 || shard >= len(s.slots) {
		shard = 0
	}
	s.slots[shard].v.Add(n)
}

// Inc adds one to the given shard's slot. No-op on nil.
func (s *ShardedCounter) Inc(shard int) { s.Add(shard, 1) }

// ShardValue returns one slot's current value (0 on nil or out of range).
func (s *ShardedCounter) ShardValue(shard int) int64 {
	if s == nil || shard < 0 || shard >= len(s.slots) {
		return 0
	}
	return s.slots[shard].v.Load()
}

// Total returns the exact sum over all slots (0 on nil).
func (s *ShardedCounter) Total() int64 {
	if s == nil {
		return 0
	}
	var t int64
	for i := range s.slots {
		t += s.slots[i].v.Load()
	}
	return t
}

// FlushTo adds the counter's total into c, zeroes the slots, and returns
// the flushed amount. Call it from a single goroutine after the workers
// have quiesced; the registry counter then carries the same value a
// serial run would have accumulated. Nil-safe on both sides.
func (s *ShardedCounter) FlushTo(c *Counter) int64 {
	if s == nil {
		return 0
	}
	var t int64
	for i := range s.slots {
		t += s.slots[i].v.Swap(0)
	}
	c.Add(t)
	return t
}
