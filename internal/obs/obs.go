package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; create one
// with NewRegistry. A nil *Registry is valid everywhere and makes every
// operation a no-op, which is how instrumented code stays zero-cost when
// observability is disabled.
type Registry struct {
	mu       sync.Mutex
	now      func() time.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labels   map[string]string
	spans    []*Span
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		now:      time.Now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string]string),
	}
}

// defaultReg is the process-wide registry used by package-level code with
// no injection point (e.g. testbed's pcap round-trip counters).
var defaultReg atomic.Pointer[Registry]

// SetDefault installs r as the process-wide default registry. Passing nil
// disables default-registry instrumentation again.
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Default returns the process-wide registry, or nil if none is installed.
func Default() *Registry { return defaultReg.Load() }

// Counter returns the named counter, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; an implicit +Inf overflow bucket is
// appended) on first use. Later calls ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1),
			min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// SetLabel records a string-valued annotation (e.g. the current pipeline
// stage). Labels appear in snapshots alongside the numeric metrics.
func (r *Registry) SetLabel(name, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.labels[name] = value
	r.mu.Unlock()
}

// Label returns a label's current value ("" when unset or nil registry).
func (r *Registry) Label(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.labels[name]
}

// Counter is a monotonically increasing integer, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the gauge. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks
// count/sum/min/max. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; counts has one extra overflow slot
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds. No-op on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Fixed bucket layouts shared by the instrumented subsystems, so
// snapshots from different runs line up bucket for bucket.
var (
	// DurationBuckets (seconds) covers microsecond collector visits up
	// to multi-minute campaign stages.
	DurationBuckets = []float64{
		1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300,
	}
	// SizeBuckets (bytes) covers single packets up to whole-campaign
	// capture volumes.
	SizeBuckets = []float64{
		256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
	}
)

// Span measures the wall time of one named stage. Obtain via StartSpan,
// stop with End. A nil *Span is a no-op.
type Span struct {
	r     *Registry
	name  string
	start time.Time
	dur   time.Duration
	done  bool
}

// StartSpan begins timing a named stage and registers it with the
// registry. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := &Span{r: r, name: name, start: r.now()}
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// End stops the span and returns its duration. Safe to call more than
// once (later calls return the recorded duration). No-op on nil.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if !s.done {
		s.dur = s.r.now().Sub(s.start)
		s.done = true
	}
	return s.dur
}
