package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter did not return the same instance")
	}
	g := r.Gauge("y")
	g.Set(1.5)
	g.Add(1.0)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// 0.5 and 1 land in <=1; 5 in <=10; 50 in <=100; 500 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Min != 0.5 || s.Max != 500 {
		t.Fatalf("min/max = %g/%g, want 0.5/500", s.Min, s.Max)
	}
	if s.Sum != 556.5 {
		t.Fatalf("sum = %g, want 556.5", s.Sum)
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from
// many goroutines; run with -race to verify the registry is race-clean
// the way the parallel experiment runner needs it to be.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat", DurationBuckets)
			g := r.Gauge("acc")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				r.SetLabel("stage", "concurrent")
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("acc").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilRegistryNoops verifies the disabled path: every operation on a
// nil registry (and the nil metrics it returns) must be a safe no-op.
func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d, want 0", got)
	}
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(1)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %g, want 0", got)
	}
	r.Histogram("h", DurationBuckets).Observe(1)
	r.Histogram("h", nil).ObserveDuration(time.Second)
	if got := r.Histogram("h", nil).Count(); got != 0 {
		t.Fatalf("nil histogram count = %d, want 0", got)
	}
	r.SetLabel("l", "v")
	if got := r.Label("l"); got != "" {
		t.Fatalf("nil label = %q, want empty", got)
	}
	sp := r.StartSpan("stage")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on empty snapshot: %v", err)
	}
	if err := r.WriteJSONFile(filepath.Join(t.TempDir(), "never-created.json")); err != nil {
		t.Fatalf("nil WriteJSONFile: %v", err)
	}
}

func TestSpanTiming(t *testing.T) {
	r := NewRegistry()
	clock := time.Unix(0, 0)
	r.now = func() time.Time { return clock }
	sp := r.StartSpan("stage")
	clock = clock.Add(1500 * time.Millisecond)
	if d := sp.End(); d != 1500*time.Millisecond {
		t.Fatalf("span duration = %v, want 1.5s", d)
	}
	// End is idempotent.
	clock = clock.Add(time.Hour)
	if d := sp.End(); d != 1500*time.Millisecond {
		t.Fatalf("second End = %v, want 1.5s", d)
	}
	running := r.StartSpan("open")
	clock = clock.Add(2 * time.Second)
	s := r.Snapshot()
	if len(s.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(s.Spans))
	}
	if s.Spans[0].Running || s.Spans[0].Seconds != 1.5 {
		t.Fatalf("ended span snapshot wrong: %+v", s.Spans[0])
	}
	if !s.Spans[1].Running || s.Spans[1].Seconds != 2 {
		t.Fatalf("running span snapshot wrong: %+v", s.Spans[1])
	}
	running.End()
}

// TestGoldenJSONExport freezes the clock, builds a small registry and
// compares the JSON export byte for byte against testdata/snapshot.json.
func TestGoldenJSONExport(t *testing.T) {
	r := NewRegistry()
	clock := time.Unix(1000, 0)
	r.now = func() time.Time { return clock }

	sp := r.StartSpan("stage:controlled")
	clock = clock.Add(2500 * time.Millisecond)
	sp.End()
	r.Counter("experiments_total").Add(128)
	r.Counter("packets_synthesized").Add(40960)
	r.Gauge("controlled_experiments_per_sec").Set(51.2)
	r.SetLabel("stage", "controlled")
	h := r.Histogram("leg_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "snapshot.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden file: %v (regenerate by writing buf: %s)", err, buf.String())
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON export differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.String(), want)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry should start nil")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	Default().Counter("via_default").Inc()
	if got := r.Counter("via_default").Value(); got != 1 {
		t.Fatalf("counter via default = %d, want 1", got)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.25)
	r.SetLabel("stage", "idle")
	r.Histogram("h", []float64{1}).Observe(0.5)
	sp := r.StartSpan("s")
	sp.End()
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stages:", "counters:", "gauges:", "labels:", "histograms:", "c ", "idle"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("text export missing %q:\n%s", want, out)
		}
	}
}
