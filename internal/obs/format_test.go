package obs

import (
	"math"
	"testing"
)

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{1, "1 B"},
		{999, "999 B"},
		{1000, "1.0 kB"},
		{1536, "1.5 kB"},
		{999_949, "999.9 kB"},
		{1_000_000, "1.0 MB"},
		{1_234_567, "1.2 MB"},
		{5_000_000_000, "5.0 GB"},
		{7_200_000_000_000, "7.2 TB"},
		{3_000_000_000_000_000, "3.0 PB"},
		{math.MaxInt64, "9.2 EB"},
		{-42, "-42 B"},
		{-1_234_567, "-1.2 MB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
