package obs

import "fmt"

// HumanBytes renders a byte count with a decimal-SI unit (kB, MB, …),
// the scale pcap tooling and the paper's tables use. Values under 1 kB
// print exact ("342 B"); larger ones keep one decimal ("1.2 MB"). It is
// the one formatter shared by ingest reports and progress lines, so
// operator-facing sizes always read the same way.
func HumanBytes(n int64) string {
	const unit = 1000
	if n > -unit && n < unit {
		return fmt.Sprintf("%d B", n)
	}
	v := float64(n)
	for _, u := range []string{"kB", "MB", "GB", "TB", "PB"} {
		v /= unit
		if v > -unit && v < unit {
			return fmt.Sprintf("%.1f %s", v, u)
		}
	}
	return fmt.Sprintf("%.1f EB", v/unit)
}
