package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds a separable 2-class problem with noise: class "a"
// clusters near (0,0,...), class "b" near (5,5,...).
func synthDataset(n, features int, gap float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		row := make([]float64, features)
		label := "a"
		base := 0.0
		if i%2 == 1 {
			label = "b"
			base = gap
		}
		for j := range row {
			row[j] = base + rng.NormFloat64()
		}
		d.Features = append(d.Features, row)
		d.Labels = append(d.Labels, label)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{Features: [][]float64{{1, 2}, {3, 4}}, Labels: []string{"x", "y"}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Features: [][]float64{{1, 2}, {3}}, Labels: []string{"x", "y"}}
	if err := bad.Validate(); err == nil {
		t.Error("ragged rows should fail")
	}
	mismatched := &Dataset{Features: [][]float64{{1}}, Labels: []string{"x", "y"}}
	if err := mismatched.Validate(); err == nil {
		t.Error("label mismatch should fail")
	}
	named := &Dataset{Features: [][]float64{{1, 2}}, Labels: []string{"x"}, FeatureNames: []string{"only-one"}}
	if err := named.Validate(); err == nil {
		t.Error("feature-name mismatch should fail")
	}
	empty := &Dataset{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty dataset: %v", err)
	}
}

func TestDatasetClassesOrder(t *testing.T) {
	d := &Dataset{Labels: []string{"b", "a", "b", "c"}, Features: [][]float64{{0}, {0}, {0}, {0}}}
	got := d.Classes()
	if len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "c" {
		t.Errorf("Classes = %v", got)
	}
}

func TestStratifiedSplitPreservesClasses(t *testing.T) {
	d := synthDataset(100, 2, 5, 1)
	rng := rand.New(rand.NewSource(2))
	train, test := StratifiedSplit(d, 0.7, rng)
	if len(train)+len(test) != 100 {
		t.Fatalf("split sizes: %d + %d", len(train), len(test))
	}
	counts := map[string]int{}
	for _, i := range train {
		counts[d.Labels[i]]++
	}
	// Each class has 50 examples; expect 35 in train.
	if counts["a"] != 35 || counts["b"] != 35 {
		t.Errorf("train class counts: %v", counts)
	}
}

func TestStratifiedSplitSingletonClass(t *testing.T) {
	d := &Dataset{
		Features: [][]float64{{1}, {2}, {3}},
		Labels:   []string{"solo", "big", "big"},
	}
	rng := rand.New(rand.NewSource(1))
	train, test := StratifiedSplit(d, 0.7, rng)
	foundSolo := false
	for _, i := range train {
		if d.Labels[i] == "solo" {
			foundSolo = true
		}
	}
	if !foundSolo {
		t.Error("singleton class must land in training set")
	}
	_ = test
}

func TestTreeLearnsSeparableData(t *testing.T) {
	d := synthDataset(200, 4, 6, 3)
	tree := TrainTree(d, DefaultTreeConfig, nil)
	correct := 0
	for i, row := range d.Features {
		if tree.Predict(row) == d.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("training accuracy = %v", acc)
	}
	if tree.Depth() < 1 {
		t.Error("tree should have at least one split")
	}
	if tree.NodeCount() < 3 {
		t.Errorf("NodeCount = %d", tree.NodeCount())
	}
}

func TestTreePureLeaf(t *testing.T) {
	d := &Dataset{
		Features: [][]float64{{1}, {2}, {3}},
		Labels:   []string{"same", "same", "same"},
	}
	tree := TrainTree(d, DefaultTreeConfig, nil)
	if tree.Depth() != 0 {
		t.Errorf("pure dataset should be a leaf, depth %d", tree.Depth())
	}
	if tree.Predict([]float64{99}) != "same" {
		t.Error("wrong leaf class")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	d := synthDataset(200, 4, 1, 4) // overlapping classes force deep trees
	tree := TrainTree(d, TreeConfig{MaxDepth: 3, MinSamplesSplit: 2}, nil)
	if tree.Depth() > 3 {
		t.Errorf("depth %d exceeds max 3", tree.Depth())
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	d := &Dataset{
		Features: [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}},
		Labels:   []string{"a", "b", "a", "b"},
	}
	tree := TrainTree(d, DefaultTreeConfig, nil)
	// No split possible; majority (tie -> lexicographic) leaf.
	if tree.Depth() != 0 {
		t.Errorf("unsplittable data should give a leaf, depth %d", tree.Depth())
	}
	if got := tree.Predict([]float64{5, 5}); got != "a" {
		t.Errorf("tie-break = %q, want lexicographic first", got)
	}
}

func TestForestLearnsAndIsDeterministic(t *testing.T) {
	d := synthDataset(200, 6, 5, 5)
	cfg := ForestConfig{NumTrees: 15, Seed: 42}
	f1 := TrainForest(d, cfg)
	f2 := TrainForest(d, cfg)
	if f1.NumTrees() != 15 {
		t.Fatalf("NumTrees = %d", f1.NumTrees())
	}
	for i, row := range d.Features {
		if f1.Predict(row) != f2.Predict(row) {
			t.Fatalf("nondeterministic prediction at row %d", i)
		}
	}
	correct := 0
	for i, row := range d.Features {
		if f1.Predict(row) == d.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("forest training accuracy = %v", acc)
	}
}

func TestForestPredictProba(t *testing.T) {
	d := synthDataset(100, 3, 8, 6)
	f := TrainForest(d, ForestConfig{NumTrees: 10, Seed: 1})
	proba := f.PredictProba([]float64{0, 0, 0})
	var total float64
	for _, p := range proba {
		total += p
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("probabilities sum to %v", total)
	}
	if proba["a"] < 0.8 {
		t.Errorf("P(a|origin) = %v", proba["a"])
	}
}

func TestForestGeneralizes(t *testing.T) {
	train := synthDataset(300, 4, 5, 7)
	test := synthDataset(100, 4, 5, 8)
	f := TrainForest(train, ForestConfig{NumTrees: 25, Seed: 9})
	correct := 0
	for i, row := range test.Features {
		if f.Predict(row) == test.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / 100; acc < 0.9 {
		t.Errorf("test accuracy = %v", acc)
	}
}

func TestCrossValidateSeparable(t *testing.T) {
	d := synthDataset(120, 4, 6, 10)
	res := CrossValidate(d, CVConfig{TrainFrac: 0.7, Repeats: 5, Seed: 11,
		Forest: ForestConfig{NumTrees: 10}})
	if res.Repeats != 5 {
		t.Fatalf("Repeats = %d", res.Repeats)
	}
	if res.DeviceF1 < 0.9 {
		t.Errorf("DeviceF1 = %v", res.DeviceF1)
	}
	if res.ActivityF1["a"] < 0.9 || res.ActivityF1["b"] < 0.9 {
		t.Errorf("ActivityF1 = %v", res.ActivityF1)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("Accuracy = %v", res.Accuracy)
	}
}

func TestCrossValidateRandomLabelsLowF1(t *testing.T) {
	// Labels independent of features: F1 should hover near chance, far
	// below the paper's 0.75 inferrability bar.
	rng := rand.New(rand.NewSource(12))
	d := &Dataset{}
	for i := 0; i < 200; i++ {
		d.Features = append(d.Features, []float64{rng.Float64(), rng.Float64()})
		label := "a"
		if rng.Intn(2) == 1 {
			label = "b"
		}
		d.Labels = append(d.Labels, label)
	}
	res := CrossValidate(d, CVConfig{TrainFrac: 0.7, Repeats: 5, Seed: 13,
		Forest: ForestConfig{NumTrees: 10}})
	if res.DeviceF1 > 0.75 {
		t.Errorf("random labels gave DeviceF1 = %v (should be uninferrable)", res.DeviceF1)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := synthDataset(80, 3, 4, 20)
	cfg := CVConfig{TrainFrac: 0.7, Repeats: 3, Seed: 21, Forest: ForestConfig{NumTrees: 5}}
	a := CrossValidate(d, cfg)
	b := CrossValidate(d, cfg)
	if a.DeviceF1 != b.DeviceF1 || a.Accuracy != b.Accuracy {
		t.Errorf("nondeterministic CV: %v vs %v", a, b)
	}
}

func TestPredictionWithinClassesProperty(t *testing.T) {
	d := synthDataset(60, 3, 5, 30)
	f := TrainForest(d, ForestConfig{NumTrees: 5, Seed: 31})
	valid := map[string]bool{"a": true, "b": true}
	prop := func(x, y, z float64) bool {
		return valid[f.Predict([]float64{x, y, z})]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetSharesRows(t *testing.T) {
	d := synthDataset(10, 2, 5, 40)
	sub := d.Subset([]int{0, 5, 9})
	if sub.NumExamples() != 3 {
		t.Fatalf("NumExamples = %d", sub.NumExamples())
	}
	if &sub.Features[0][0] != &d.Features[0][0] {
		t.Error("subset should share row storage")
	}
	if sub.Labels[1] != d.Labels[5] {
		t.Error("labels not mapped")
	}
}
