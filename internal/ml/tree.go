package ml

import (
	"math/rand"
	"sort"
)

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	// MaxDepth limits the tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the minimum node size eligible for splitting.
	MinSamplesSplit int
	// MinImpurityDecrease is the minimum Gini decrease for a split.
	MinImpurityDecrease float64
	// FeatureSubset, if > 0, samples that many candidate features per
	// split (the random-forest "mtry" parameter). 0 considers all.
	FeatureSubset int
}

// DefaultTreeConfig mirrors common CART defaults.
var DefaultTreeConfig = TreeConfig{MaxDepth: 24, MinSamplesSplit: 2}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	// leaf payload
	class string
	votes map[string]int
}

// Tree is a trained CART classifier.
type Tree struct {
	root    *node
	classes []string
}

// TrainTree fits a CART tree on d. The rng drives feature subsampling
// when cfg.FeatureSubset > 0; it may be nil when FeatureSubset == 0.
func TrainTree(d *Dataset, cfg TreeConfig, rng *rand.Rand) *Tree {
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	idx := make([]int, d.NumExamples())
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{classes: d.Classes()}
	t.root = grow(d, idx, cfg, rng, 0)
	return t
}

func grow(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand, depth int) *node {
	votes := countVotes(d, idx)
	if len(votes) == 1 ||
		len(idx) < cfg.MinSamplesSplit ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return leaf(votes)
	}
	feat, thr, gain := bestSplit(d, idx, cfg, rng)
	if feat < 0 || gain <= cfg.MinImpurityDecrease {
		return leaf(votes)
	}
	var left, right []int
	for _, i := range idx {
		if d.Features[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leaf(votes)
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      grow(d, left, cfg, rng, depth+1),
		right:     grow(d, right, cfg, rng, depth+1),
	}
}

func leaf(votes map[string]int) *node {
	best, bestN := "", -1
	// Deterministic tie-break by label order.
	keys := make([]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if votes[k] > bestN {
			best, bestN = k, votes[k]
		}
	}
	return &node{feature: -1, class: best, votes: votes}
}

func countVotes(d *Dataset, idx []int) map[string]int {
	votes := make(map[string]int)
	for _, i := range idx {
		votes[d.Labels[i]]++
	}
	return votes
}

// gini computes the Gini impurity of a vote count. The sum of squared
// counts is accumulated in integers so the result does not depend on map
// iteration order (float accumulation order would perturb the low bits
// and make split selection — and hence whole trees — nondeterministic).
func gini(votes map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	var sumSq int64
	for _, c := range votes {
		sumSq += int64(c) * int64(c)
	}
	t := int64(total)
	return 1 - float64(sumSq)/float64(t*t)
}

// bestSplit finds the (feature, threshold) pair with maximum Gini
// decrease. Thresholds are midpoints between consecutive distinct sorted
// feature values.
func bestSplit(d *Dataset, idx []int, cfg TreeConfig, rng *rand.Rand) (int, float64, float64) {
	nf := d.NumFeatures()
	if nf == 0 {
		return -1, 0, 0
	}
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if cfg.FeatureSubset > 0 && cfg.FeatureSubset < nf && rng != nil {
		rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:cfg.FeatureSubset]
		sort.Ints(features) // determinism of tie-breaks
	}

	parentVotes := countVotes(d, idx)
	parentGini := gini(parentVotes, len(idx))
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0

	type valLabel struct {
		v     float64
		label string
	}
	vl := make([]valLabel, len(idx))

	for _, f := range features {
		for i, j := range idx {
			vl[i] = valLabel{d.Features[j][f], d.Labels[j]}
		}
		sort.Slice(vl, func(a, b int) bool { return vl[a].v < vl[b].v })

		leftVotes := make(map[string]int)
		rightVotes := make(map[string]int)
		for _, e := range vl {
			rightVotes[e.label]++
		}
		nLeft := 0
		nTotal := len(vl)
		for i := 0; i < nTotal-1; i++ {
			leftVotes[vl[i].label]++
			rightVotes[vl[i].label]--
			if rightVotes[vl[i].label] == 0 {
				delete(rightVotes, vl[i].label)
			}
			nLeft++
			if vl[i].v == vl[i+1].v {
				continue // can't split between equal values
			}
			nRight := nTotal - nLeft
			w := float64(nLeft)/float64(nTotal)*gini(leftVotes, nLeft) +
				float64(nRight)/float64(nTotal)*gini(rightVotes, nRight)
			gain := parentGini - w
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (vl[i].v + vl[i+1].v) / 2
			}
		}
	}
	return bestFeat, bestThr, bestGain
}

// Predict returns the predicted class for one feature vector.
func (t *Tree) Predict(x []float64) string {
	n := t.root
	for n.feature >= 0 {
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NodeCount returns the number of nodes in the tree.
func (t *Tree) NodeCount() int { return nodeCount(t.root) }

func nodeCount(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature < 0 {
		return 1
	}
	return 1 + nodeCount(n.left) + nodeCount(n.right)
}
