package ml

import (
	"runtime"
	"sync"
)

// workerCount resolves a Workers knob: n > 0 is taken literally, anything
// else means "one worker per core".
func workerCount(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns when all calls finished. With one worker (or one
// item) it degenerates to a plain loop on the calling goroutine, so serial
// configurations pay no synchronization. Callers keep determinism by
// making fn(i) a pure function of pre-drawn inputs that writes only to
// slot i of an output slice.
func parallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
