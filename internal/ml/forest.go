package ml

import (
	"math"
	"math/rand"
	"sort"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// NumTrees is the ensemble size (default 50).
	NumTrees int
	// Tree configures individual trees; FeatureSubset 0 defaults to
	// sqrt(numFeatures), the standard heuristic for classification.
	Tree TreeConfig
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
}

// DefaultForestConfig matches the scale the paper's classifiers used.
var DefaultForestConfig = ForestConfig{
	NumTrees: 50,
	Tree:     TreeConfig{MaxDepth: 24, MinSamplesSplit: 2},
}

// Forest is a trained random-forest classifier.
type Forest struct {
	trees   []*Tree
	classes []string
}

// TrainForest fits a bagged forest on d.
func TrainForest(d *Dataset, cfg ForestConfig) *Forest {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = DefaultForestConfig.NumTrees
	}
	tcfg := cfg.Tree
	if tcfg.MaxDepth == 0 && tcfg.MinSamplesSplit == 0 {
		tcfg = DefaultForestConfig.Tree
	}
	if tcfg.FeatureSubset == 0 {
		tcfg.FeatureSubset = int(math.Sqrt(float64(d.NumFeatures())) + 0.5)
		if tcfg.FeatureSubset < 1 {
			tcfg.FeatureSubset = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{classes: d.Classes()}
	n := d.NumExamples()
	for t := 0; t < cfg.NumTrees; t++ {
		// Bootstrap sample with replacement.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boot := d.Subset(idx)
		treeRng := rand.New(rand.NewSource(rng.Int63()))
		f.trees = append(f.trees, TrainTree(boot, tcfg, treeRng))
	}
	return f
}

// NumTrees is the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []float64) string {
	votes := make(map[string]int)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	best, bestN := "", -1
	keys := make([]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if votes[k] > bestN {
			best, bestN = k, votes[k]
		}
	}
	return best
}

// PredictProba returns the per-class vote share for x.
func (f *Forest) PredictProba(x []float64) map[string]float64 {
	votes := make(map[string]float64)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	for k := range votes {
		votes[k] /= float64(len(f.trees))
	}
	return votes
}
