package ml

import (
	"math"
	"math/rand"
	"sort"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// NumTrees is the ensemble size (default 50).
	NumTrees int
	// Tree configures individual trees; FeatureSubset 0 defaults to
	// sqrt(numFeatures), the standard heuristic for classification.
	Tree TreeConfig
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
	// Workers bounds tree-growing parallelism: 0 means GOMAXPROCS, 1 is
	// serial. The trained forest is bit-identical for every worker count:
	// all bootstrap index sets and per-tree seeds are drawn sequentially
	// from Seed before any tree grows, and finished trees are placed by
	// index.
	Workers int
}

// DefaultForestConfig matches the scale the paper's classifiers used.
var DefaultForestConfig = ForestConfig{
	NumTrees: 50,
	Tree:     TreeConfig{MaxDepth: 24, MinSamplesSplit: 2},
}

// Forest is a trained random-forest classifier.
type Forest struct {
	trees []*Tree
	// classes holds the training set's class labels in sorted order;
	// classIdx inverts it. Predict votes into a slice indexed by this
	// table instead of a per-call map.
	classes  []string
	classIdx map[string]int
}

// TrainForest fits a bagged forest on d.
func TrainForest(d *Dataset, cfg ForestConfig) *Forest {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = DefaultForestConfig.NumTrees
	}
	tcfg := cfg.Tree
	if tcfg.MaxDepth == 0 && tcfg.MinSamplesSplit == 0 {
		tcfg = DefaultForestConfig.Tree
	}
	if tcfg.FeatureSubset == 0 {
		tcfg.FeatureSubset = int(math.Sqrt(float64(d.NumFeatures())) + 0.5)
		if tcfg.FeatureSubset < 1 {
			tcfg.FeatureSubset = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := append([]string(nil), d.Classes()...)
	sort.Strings(classes)
	f := &Forest{
		trees:    make([]*Tree, cfg.NumTrees),
		classes:  classes,
		classIdx: make(map[string]int, len(classes)),
	}
	for i, c := range classes {
		f.classIdx[c] = i
	}
	n := d.NumExamples()
	// Pre-draw every random decision in the exact order the serial
	// trainer consumed them — bootstrap indices then the tree's seed, per
	// tree — so the ensemble is bit-identical for any worker count.
	boots := make([][]int, cfg.NumTrees)
	seeds := make([]int64, cfg.NumTrees)
	for t := range boots {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		boots[t] = idx
		seeds[t] = rng.Int63()
	}
	parallelFor(cfg.NumTrees, workerCount(cfg.Workers), func(t int) {
		treeRng := rand.New(rand.NewSource(seeds[t]))
		f.trees[t] = TrainTree(d.Subset(boots[t]), tcfg, treeRng)
	})
	return f
}

// NumTrees is the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// predictStackClasses bounds the vote buffer Predict keeps on the stack;
// forests over more classes fall back to a heap slice per call.
const predictStackClasses = 64

// Predict returns the majority-vote class for x; ties break toward the
// lexicographically smallest class. It allocates nothing for forests up
// to predictStackClasses classes and is safe for concurrent use.
func (f *Forest) Predict(x []float64) string {
	label, _ := f.PredictTop(x)
	return label
}

// PredictTop returns the majority-vote class and its vote share (votes
// divided by ensemble size), with the same tie-break as Predict. It is
// the allocation-free replacement for argmax(PredictProba(x)).
func (f *Forest) PredictTop(x []float64) (string, float64) {
	if len(f.trees) == 0 || len(f.classes) == 0 {
		return "", 0
	}
	var stack [predictStackClasses]int
	var votes []int
	if len(f.classes) <= len(stack) {
		votes = stack[:len(f.classes)]
	} else {
		votes = make([]int, len(f.classes))
	}
	for _, t := range f.trees {
		votes[f.classIdx[t.Predict(x)]]++
	}
	best := 0
	for i := 1; i < len(votes); i++ {
		if votes[i] > votes[best] {
			best = i
		}
	}
	return f.classes[best], float64(votes[best]) / float64(len(f.trees))
}

// PredictProba returns the per-class vote share for x.
func (f *Forest) PredictProba(x []float64) map[string]float64 {
	votes := make(map[string]float64)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	for k := range votes {
		votes[k] /= float64(len(f.trees))
	}
	return votes
}
