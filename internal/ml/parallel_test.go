package ml

import (
	"fmt"
	"math"
	"testing"
)

// synthMulticlass builds a k-class separable problem so tie-breaks and
// per-class metrics get exercised, not just binary votes.
func synthMulticlass(n, features, k int, seed int64) *Dataset {
	d := synthDataset(n, features, 0, seed)
	for i := range d.Labels {
		c := i % k
		d.Labels[i] = fmt.Sprintf("class%02d", c)
		for j := range d.Features[i] {
			d.Features[i][j] += float64(c) * 6
		}
	}
	return d
}

// forestFingerprint captures everything downstream code can observe about
// a trained forest: its prediction and vote share on every probe row.
func forestFingerprint(f *Forest, probes [][]float64) string {
	out := ""
	for _, x := range probes {
		label, share := f.PredictTop(x)
		out += fmt.Sprintf("%s/%.9f;", label, share)
	}
	return out
}

// The tentpole guarantee: a forest trained on N workers is bit-identical
// to the serial build, because bootstrap indices and tree seeds are
// pre-drawn from the same RNG stream and trees are placed by index.
func TestTrainForestParallelBitIdentical(t *testing.T) {
	d := synthMulticlass(90, 5, 3, 21)
	serial := TrainForest(d, ForestConfig{NumTrees: 20, Seed: 7, Workers: 1})
	for _, workers := range []int{2, 3, 8} {
		par := TrainForest(d, ForestConfig{NumTrees: 20, Seed: 7, Workers: workers})
		if got, want := forestFingerprint(par, d.Features), forestFingerprint(serial, d.Features); got != want {
			t.Errorf("workers=%d forest differs from serial build", workers)
		}
	}
}

func TestCrossValidateParallelBitIdentical(t *testing.T) {
	d := synthMulticlass(60, 4, 3, 33)
	cfg := CVConfig{TrainFrac: 0.7, Repeats: 6, Seed: 13,
		Forest: ForestConfig{NumTrees: 8}, Workers: 1}
	serial := CrossValidate(d, cfg)
	for _, workers := range []int{2, 4} {
		cfg.Workers = workers
		par := CrossValidate(d, cfg)
		if par.DeviceF1 != serial.DeviceF1 || par.MacroF1 != serial.MacroF1 ||
			par.Accuracy != serial.Accuracy || par.Repeats != serial.Repeats {
			t.Errorf("workers=%d: aggregate metrics differ from serial run", workers)
		}
		if len(par.ActivityF1) != len(serial.ActivityF1) {
			t.Fatalf("workers=%d: ActivityF1 size %d != %d", workers, len(par.ActivityF1), len(serial.ActivityF1))
		}
		for k, v := range serial.ActivityF1 {
			if pv, ok := par.ActivityF1[k]; !ok || pv != v {
				t.Errorf("workers=%d: ActivityF1[%q] = %v, serial %v", workers, k, pv, v)
			}
		}
	}
}

// PredictTop must agree with the historical map-and-sort argmax over
// PredictProba, including the lexicographically-smallest tie-break.
func TestPredictTopMatchesProbaArgmax(t *testing.T) {
	d := synthMulticlass(80, 4, 4, 5)
	f := TrainForest(d, ForestConfig{NumTrees: 9, Seed: 3})
	for i, x := range d.Features {
		proba := f.PredictProba(x)
		bestLabel, bestV := "", -1.0
		for k, v := range proba {
			if v > bestV || (v == bestV && k < bestLabel) {
				bestLabel, bestV = k, v
			}
		}
		label, share := f.PredictTop(x)
		if label != bestLabel || math.Abs(share-bestV) > 0 {
			t.Fatalf("row %d: PredictTop = (%s, %v), proba argmax = (%s, %v)",
				i, label, share, bestLabel, bestV)
		}
	}
}

// The prediction hot loop runs once per traffic unit per model; it must
// not allocate (it used to build and sort a map per call).
func TestPredictZeroAllocs(t *testing.T) {
	d := synthMulticlass(60, 4, 3, 9)
	f := TrainForest(d, ForestConfig{NumTrees: 10, Seed: 2})
	x := d.Features[0]
	if avg := testing.AllocsPerRun(100, func() { f.Predict(x) }); avg != 0 {
		t.Errorf("Predict allocates %v times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { f.PredictTop(x) }); avg != 0 {
		t.Errorf("PredictTop allocates %v times per call, want 0", avg)
	}
}
