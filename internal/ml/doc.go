// Package ml implements the machine-learning stack the paper's activity
// inference uses (§6.1, §6.3): CART decision trees, a bagged random forest
// with per-split feature subsampling, and stratified repeated
// cross-validation. Everything is deterministic given a seed and built on
// the standard library only.
//
// Training and cross-validation parallelize across trees and folds
// (ForestConfig.Workers, CVConfig.Workers) without changing a single
// prediction: all bootstrap index sets and per-tree seeds are pre-drawn
// sequentially from the seeded RNG — the exact draw sequence of a
// serial run — and workers grow trees placed by index. Forest.Predict
// and PredictTop are allocation-free and safe for concurrent use.
package ml
