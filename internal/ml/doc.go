// Package ml implements the machine-learning stack the paper's activity
// inference uses (§6.1, §6.3): CART decision trees, a bagged random forest
// with per-split feature subsampling, and stratified repeated
// cross-validation. Everything is deterministic given a seed and built on
// the standard library only.
package ml
