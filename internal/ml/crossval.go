package ml

import (
	"math/rand"

	"github.com/neu-sns/intl-iot-go/internal/stats"
)

// CVConfig controls repeated stratified cross-validation. The paper (§6.3)
// uses a 7/3 split repeated 10 times.
type CVConfig struct {
	TrainFrac float64
	Repeats   int
	Forest    ForestConfig
	Seed      int64
	// Workers bounds repeat-evaluation parallelism: 0 means GOMAXPROCS, 1
	// is serial. Results are bit-identical for every worker count: every
	// split and forest seed is pre-drawn sequentially from Seed, repeats
	// evaluate into per-index slots, and metrics fold in repeat order.
	Workers int
}

// PaperCVConfig is the §6.3 protocol.
var PaperCVConfig = CVConfig{TrainFrac: 0.7, Repeats: 10}

// CVResult aggregates metrics across repeats.
type CVResult struct {
	// DeviceF1 is the mean support-weighted F1 across repeats — the
	// per-device score of §6.3.
	DeviceF1 float64
	// MacroF1 is the mean unweighted per-class F1 across repeats.
	MacroF1 float64
	// ActivityF1 maps each activity label to its mean F1 across the
	// repeats in which it appeared in the test set.
	ActivityF1 map[string]float64
	// Accuracy is the mean accuracy across repeats.
	Accuracy float64
	// Repeats is the number of repeats actually evaluated (repeats whose
	// test split came out empty are skipped).
	Repeats int
}

// CrossValidate runs repeated stratified hold-out validation of a random
// forest on d and aggregates F1 metrics.
func CrossValidate(d *Dataset, cfg CVConfig) CVResult {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.7
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := CVResult{ActivityF1: make(map[string]float64)}
	activityCounts := make(map[string]int)
	var sumWeighted, sumMacro, sumAcc float64

	// Pre-draw each repeat's split and forest seed in the order the
	// serial loop consumed them. Repeats whose split degenerates draw no
	// forest seed — exactly like the serial `continue` did — so the RNG
	// stream lines up draw for draw.
	type repeat struct {
		train, test []int
		seed        int64
	}
	reps := make([]repeat, 0, cfg.Repeats)
	for r := 0; r < cfg.Repeats; r++ {
		trainIdx, testIdx := StratifiedSplit(d, cfg.TrainFrac, rng)
		if len(testIdx) == 0 || len(trainIdx) == 0 {
			continue
		}
		reps = append(reps, repeat{trainIdx, testIdx, rng.Int63()})
	}

	// Evaluate repeats in parallel; each confusion matrix lands in its
	// own slot and the float metrics fold in repeat order below, so the
	// accumulation order matches the serial loop exactly. Inner forests
	// train serially — the repeats already saturate the worker pool.
	cms := make([]*stats.ConfusionMatrix, len(reps))
	parallelFor(len(reps), workerCount(cfg.Workers), func(i int) {
		fcfg := cfg.Forest
		fcfg.Seed = reps[i].seed
		fcfg.Workers = 1
		forest := TrainForest(d.Subset(reps[i].train), fcfg)
		cm := stats.NewConfusionMatrix()
		for _, j := range reps[i].test {
			cm.Add(d.Labels[j], forest.Predict(d.Features[j]))
		}
		cms[i] = cm
	})

	for _, cm := range cms {
		sumWeighted += cm.WeightedF1()
		sumMacro += cm.MacroF1()
		sumAcc += cm.Accuracy()
		for _, m := range cm.PerClass() {
			if m.Support == 0 {
				continue
			}
			res.ActivityF1[m.Class] += m.F1
			activityCounts[m.Class]++
		}
		res.Repeats++
	}
	if res.Repeats > 0 {
		res.DeviceF1 = sumWeighted / float64(res.Repeats)
		res.MacroF1 = sumMacro / float64(res.Repeats)
		res.Accuracy = sumAcc / float64(res.Repeats)
	}
	for k, n := range activityCounts {
		res.ActivityF1[k] /= float64(n)
	}
	return res
}
