package ml

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkTrainForest measures forest training serial vs one worker per
// core. The parallel path pre-draws all bootstrap sets from the seeded
// RNG, so both variants grow byte-identical forests — the benchmark pair
// is the speedup the determinism costs nothing to get.
func BenchmarkTrainForest(b *testing.B) {
	ds := synthMulticlass(400, 12, 6, 7)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				TrainForest(ds, ForestConfig{NumTrees: 40, Seed: 42, Workers: w})
			}
		})
	}
}

// BenchmarkForestPredict exercises the §6 hot loop: one call per traffic
// unit per device model during idle/uncontrolled detection. The vote
// buffer is a stack array, so steady-state predictions must not allocate.
func BenchmarkForestPredict(b *testing.B) {
	ds := synthMulticlass(400, 12, 6, 7)
	f := TrainForest(ds, ForestConfig{NumTrees: 40, Seed: 42})
	x := ds.Features[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictTop(x)
	}
}
