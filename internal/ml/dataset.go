package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a design matrix with string labels.
type Dataset struct {
	// Features holds one row per example; all rows have equal length.
	Features [][]float64
	// Labels holds the class label of each row.
	Labels []string
	// FeatureNames optionally names the columns (for importance reports).
	FeatureNames []string
}

// NumExamples is the number of rows.
func (d *Dataset) NumExamples() int { return len(d.Features) }

// NumFeatures is the number of columns (0 for an empty dataset).
func (d *Dataset) NumFeatures() int {
	if len(d.Features) == 0 {
		return 0
	}
	return len(d.Features[0])
}

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if len(d.Features) != len(d.Labels) {
		return fmt.Errorf("ml: %d feature rows but %d labels", len(d.Features), len(d.Labels))
	}
	if len(d.Features) == 0 {
		return nil
	}
	w := len(d.Features[0])
	for i, row := range d.Features {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != w {
		return fmt.Errorf("ml: %d feature names for %d features", len(d.FeatureNames), w)
	}
	return nil
}

// Classes returns the distinct labels in first-seen order.
func (d *Dataset) Classes() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range d.Labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// Subset returns a view of the dataset restricted to the given row
// indices (rows are shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	sub := &Dataset{
		Features:     make([][]float64, len(idx)),
		Labels:       make([]string, len(idx)),
		FeatureNames: d.FeatureNames,
	}
	for i, j := range idx {
		sub.Features[i] = d.Features[j]
		sub.Labels[i] = d.Labels[j]
	}
	return sub
}

// StratifiedSplit partitions the dataset into train/test index sets with
// approximately trainFrac of each class in the training set. Classes with
// a single example go to the training set.
func StratifiedSplit(d *Dataset, trainFrac float64, rng *rand.Rand) (train, test []int) {
	byClass := make(map[string][]int)
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	for _, cls := range d.Classes() { // deterministic iteration order
		idx := byClass[cls]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTrain := int(float64(len(idx))*trainFrac + 0.5)
		if nTrain < 1 {
			nTrain = 1
		}
		if nTrain > len(idx) {
			nTrain = len(idx)
		}
		train = append(train, idx[:nTrain]...)
		test = append(test, idx[nTrain:]...)
	}
	return train, test
}
