// Package dnsmsg implements the DNS wire format (RFC 1035) for the message
// shapes IoT devices emit: queries and responses carrying A, AAAA, CNAME
// and PTR records, including name compression on the write path and
// compression-pointer chasing on the read path.
//
// The destination analysis (§4.1 of the paper) depends on this codec: each
// device flow's destination IP is mapped back to a second-level domain by
// replaying the DNS responses captured from the device.
package dnsmsg
