package dnsmsg

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/neu-sns/intl-iot-go/internal/netx"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "devs.tplinkcloud.com", TypeA)
	m, err := Parse(q.Pack())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.ID != 0x1234 || m.Response {
		t.Errorf("header: %+v", m)
	}
	if len(m.Questions) != 1 {
		t.Fatalf("questions = %d", len(m.Questions))
	}
	if m.Questions[0].Name != "devs.tplinkcloud.com" || m.Questions[0].Type != TypeA {
		t.Errorf("question: %+v", m.Questions[0])
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "api.amazonalexa.com", TypeA)
	resp := NewResponse(q, []Resource{
		{Name: "api.amazonalexa.com", Type: TypeCNAME, TTL: 60, Target: "alexa.us-east-1.elb.amazonaws.com"},
		{Name: "alexa.us-east-1.elb.amazonaws.com", Type: TypeA, TTL: 60, Addr: netx.MustParseAddr("52.94.236.10")},
	})
	m, err := Parse(resp.Pack())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !m.Response || m.ID != 7 {
		t.Errorf("header: %+v", m)
	}
	if len(m.Answers) != 2 {
		t.Fatalf("answers = %d", len(m.Answers))
	}
	if m.Answers[0].Type != TypeCNAME || m.Answers[0].Target != "alexa.us-east-1.elb.amazonaws.com" {
		t.Errorf("cname: %+v", m.Answers[0])
	}
	if m.Answers[1].Addr != netx.MustParseAddr("52.94.236.10") {
		t.Errorf("A addr: %v", m.Answers[1].Addr)
	}
	if m.Answers[1].TTL != 60 {
		t.Errorf("TTL: %d", m.Answers[1].TTL)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	q := NewQuery(9, "ipv6.google.com", TypeAAAA)
	resp := NewResponse(q, []Resource{
		{Name: "ipv6.google.com", Type: TypeAAAA, TTL: 300, Addr: netx.MustParseAddr("2607:f8b0::1")},
	})
	m, err := Parse(resp.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Addr != netx.MustParseAddr("2607:f8b0::1") {
		t.Errorf("AAAA addr: %v", m.Answers[0].Addr)
	}
}

func TestTXTRoundTrip(t *testing.T) {
	q := NewQuery(3, "probe.example.com", TypeTXT)
	resp := NewResponse(q, []Resource{
		{Name: "probe.example.com", Type: TypeTXT, TTL: 30, Text: "v=1; fw=2.0.1"},
	})
	m, err := Parse(resp.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Text != "v=1; fw=2.0.1" {
		t.Errorf("TXT: %q", m.Answers[0].Text)
	}
}

func TestNameCompressionUsed(t *testing.T) {
	// A response where answer name equals question name should compress to
	// a 2-byte pointer, making the message shorter than the uncompressed
	// encoding.
	q := NewQuery(1, "very.long.subdomain.example-cloud-provider.com", TypeA)
	resp := NewResponse(q, []Resource{
		{Name: "very.long.subdomain.example-cloud-provider.com", Type: TypeA, Addr: netx.MustParseAddr("10.0.0.1")},
	})
	packed := resp.Pack()
	nameLen := len("very.long.subdomain.example-cloud-provider.com") + 2
	uncompressed := 12 + nameLen + 4 + nameLen + 10 + 4
	if len(packed) >= uncompressed {
		t.Fatalf("no compression: packed %d bytes, uncompressed %d", len(packed), uncompressed)
	}
	// And it must still parse back correctly.
	m, err := Parse(packed)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "very.long.subdomain.example-cloud-provider.com" {
		t.Errorf("decompressed name: %q", m.Answers[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Error("short message should error")
	}
	// Pointer loop: name at offset 12 points at itself.
	msg := make([]byte, 16)
	msg[4], msg[5] = 0, 1 // one question
	msg[12], msg[13] = 0xc0, 12
	if _, err := Parse(msg); err == nil {
		t.Error("pointer loop should error")
	}
}

func TestRCodePropagates(t *testing.T) {
	m := &Message{ID: 5, Response: true, RCode: RCodeNameErr}
	got, err := Parse(m.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeNameErr {
		t.Errorf("RCode = %d", got.RCode)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(id uint16, host string, a, b, c, d byte) bool {
		// Sanitize host into a valid name.
		host = sanitizeName(host)
		q := NewQuery(id, host+".example.com", TypeA)
		addr := netx.MustParseAddr("10.1.2.3")
		_ = []byte{a, b, c, d}
		resp := NewResponse(q, []Resource{{Name: host + ".example.com", Type: TypeA, Addr: addr}})
		m, err := Parse(resp.Pack())
		if err != nil {
			return false
		}
		return m.ID == id && len(m.Answers) == 1 && m.Answers[0].Addr == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
		if b.Len() >= 20 {
			break
		}
	}
	if b.Len() == 0 {
		return "dev"
	}
	return b.String()
}

func TestSLD(t *testing.T) {
	cases := map[string]string{
		"devs.tplinkcloud.com":      "tplinkcloud.com",
		"tplinkcloud.com":           "tplinkcloud.com",
		"a.b.c.amazonaws.com":       "amazonaws.com",
		"cdn.samsungcloud.co.uk":    "samsungcloud.co.uk",
		"api.mi.com.cn":             "mi.com.cn",
		"localhost":                 "localhost",
		"Echo.Amazon.COM.":          "amazon.com",
		"metrics.iot.us.example.io": "example.io",
	}
	for in, want := range cases {
		if got := SLD(in); got != want {
			t.Errorf("SLD(%q) = %q, want %q", in, got, want)
		}
	}
}
