package dnsmsg

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"github.com/neu-sns/intl-iot-go/internal/netx"
)

// Record types.
const (
	TypeA     uint16 = 1
	TypeNS    uint16 = 2
	TypeCNAME uint16 = 5
	TypePTR   uint16 = 12
	TypeTXT   uint16 = 16
	TypeAAAA  uint16 = 28
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Response codes.
const (
	RCodeSuccess  uint8 = 0
	RCodeNameErr  uint8 = 3 // NXDOMAIN
	RCodeRefused  uint8 = 5
	RCodeServFail uint8 = 2
)

// Header flag bits within the 16-bit flags word.
const (
	flagQR uint16 = 1 << 15
	flagAA uint16 = 1 << 10
	flagTC uint16 = 1 << 9
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
)

// Question is a DNS question entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Resource is a DNS answer/authority/additional record. Exactly one of the
// typed payload fields is meaningful given Type.
type Resource struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32

	// Addr holds the address for A/AAAA records.
	Addr netx.Addr
	// Target holds the target name for CNAME/NS/PTR records.
	Target string
	// Text holds TXT record strings joined as-is.
	Text string
}

// Message is a DNS message.
type Message struct {
	ID        uint16
	Response  bool
	Authority bool
	RecDesire bool
	RecAvail  bool
	RCode     uint8

	Questions []Question
	Answers   []Resource
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		ID:        id,
		RecDesire: true,
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response mirroring q's ID and question.
func NewResponse(q *Message, answers []Resource) *Message {
	m := &Message{
		ID:        q.ID,
		Response:  true,
		RecDesire: q.RecDesire,
		RecAvail:  true,
		Questions: append([]Question(nil), q.Questions...),
		Answers:   answers,
	}
	return m
}

// errors
var (
	errShort    = errors.New("dnsmsg: message too short")
	errBadName  = errors.New("dnsmsg: malformed name")
	errPtrLoop  = errors.New("dnsmsg: compression pointer loop")
	errNameSize = errors.New("dnsmsg: name exceeds 255 octets")
)

// Append serializes the message, appending to dst. Names are compressed
// against earlier occurrences.
func (m *Message) Append(dst []byte) []byte {
	offsets := map[string]int{}
	base := len(dst)
	hdr := make([]byte, 12)
	be16put(hdr[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	if m.Authority {
		flags |= flagAA
	}
	if m.RecDesire {
		flags |= flagRD
	}
	if m.RecAvail {
		flags |= flagRA
	}
	flags |= uint16(m.RCode & 0xf)
	be16put(hdr[2:4], flags)
	be16put(hdr[4:6], uint16(len(m.Questions)))
	be16put(hdr[6:8], uint16(len(m.Answers)))
	dst = append(dst, hdr...)
	for _, q := range m.Questions {
		dst = appendName(dst, base, q.Name, offsets)
		dst = append16(dst, q.Type)
		dst = append16(dst, q.Class)
	}
	for _, a := range m.Answers {
		dst = appendResource(dst, base, a, offsets)
	}
	return dst
}

// Pack serializes the message into a fresh buffer.
func (m *Message) Pack() []byte { return m.Append(nil) }

func appendResource(dst []byte, base int, r Resource, offsets map[string]int) []byte {
	dst = appendName(dst, base, r.Name, offsets)
	dst = append16(dst, r.Type)
	cls := r.Class
	if cls == 0 {
		cls = ClassIN
	}
	dst = append16(dst, cls)
	dst = append(dst, byte(r.TTL>>24), byte(r.TTL>>16), byte(r.TTL>>8), byte(r.TTL))
	switch r.Type {
	case TypeA:
		a := r.Addr.As4()
		dst = append16(dst, 4)
		dst = append(dst, a[:]...)
	case TypeAAAA:
		a := r.Addr.As16()
		dst = append16(dst, 16)
		dst = append(dst, a[:]...)
	case TypeCNAME, TypeNS, TypePTR:
		// RDATA length depends on compression; write placeholder then fix.
		lenAt := len(dst)
		dst = append16(dst, 0)
		start := len(dst)
		dst = appendName(dst, base, r.Target, offsets)
		be16put(dst[lenAt:lenAt+2], uint16(len(dst)-start))
	case TypeTXT:
		txt := r.Text
		if len(txt) > 255 {
			txt = txt[:255]
		}
		dst = append16(dst, uint16(len(txt)+1))
		dst = append(dst, byte(len(txt)))
		dst = append(dst, txt...)
	default:
		dst = append16(dst, 0)
	}
	return dst
}

// appendName writes a possibly-compressed domain name. offsets maps a
// (case-normalized) suffix to its absolute offset from base.
func appendName(dst []byte, base int, name string, offsets map[string]int) []byte {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(dst, 0)
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		suffix := strings.ToLower(strings.Join(labels[i:], "."))
		if off, ok := offsets[suffix]; ok && off < 0x3fff {
			return append(dst, byte(0xc0|off>>8), byte(off))
		}
		off := len(dst) - base
		if off < 0x3fff {
			offsets[suffix] = off
		}
		l := labels[i]
		if len(l) > 63 {
			l = l[:63]
		}
		dst = append(dst, byte(len(l)))
		dst = append(dst, l...)
	}
	return append(dst, 0)
}

// Parse decodes a DNS message.
func Parse(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, errShort
	}
	m := &Message{ID: be16(b[0:2])}
	flags := be16(b[2:4])
	m.Response = flags&flagQR != 0
	m.Authority = flags&flagAA != 0
	m.RecDesire = flags&flagRD != 0
	m.RecAvail = flags&flagRA != 0
	m.RCode = uint8(flags & 0xf)
	qd := int(be16(b[4:6]))
	an := int(be16(b[6:8]))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := parseName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(b) {
			return nil, errShort
		}
		m.Questions = append(m.Questions, Question{
			Name: name, Type: be16(b[off : off+2]), Class: be16(b[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		r, n, err := parseResource(b, off)
		if err != nil {
			return nil, err
		}
		m.Answers = append(m.Answers, r)
		off = n
	}
	return m, nil
}

func parseResource(b []byte, off int) (Resource, int, error) {
	name, off, err := parseName(b, off)
	if err != nil {
		return Resource{}, 0, err
	}
	if off+10 > len(b) {
		return Resource{}, 0, errShort
	}
	r := Resource{
		Name:  name,
		Type:  be16(b[off : off+2]),
		Class: be16(b[off+2 : off+4]),
		TTL: uint32(b[off+4])<<24 | uint32(b[off+5])<<16 |
			uint32(b[off+6])<<8 | uint32(b[off+7]),
	}
	rdlen := int(be16(b[off+8 : off+10]))
	off += 10
	if off+rdlen > len(b) {
		return Resource{}, 0, errShort
	}
	rdata := b[off : off+rdlen]
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return Resource{}, 0, fmt.Errorf("dnsmsg: A record with %d-byte rdata", rdlen)
		}
		var a [4]byte
		copy(a[:], rdata)
		r.Addr = netip.AddrFrom4(a)
	case TypeAAAA:
		if rdlen != 16 {
			return Resource{}, 0, fmt.Errorf("dnsmsg: AAAA record with %d-byte rdata", rdlen)
		}
		var a [16]byte
		copy(a[:], rdata)
		r.Addr = netip.AddrFrom16(a)
	case TypeCNAME, TypeNS, TypePTR:
		// The target may use compression pointers into the full message.
		t, _, err := parseName(b, off)
		if err != nil {
			return Resource{}, 0, err
		}
		r.Target = t
	case TypeTXT:
		if rdlen > 0 {
			n := int(rdata[0])
			if n+1 <= rdlen {
				r.Text = string(rdata[1 : 1+n])
			}
		}
	}
	return r, off + rdlen, nil
}

// parseName decodes a possibly-compressed name starting at off, returning
// the dotted name and the offset just past the name's in-place encoding.
func parseName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	end := off
	hops := 0
	total := 0
	for {
		if off >= len(b) {
			return "", 0, errShort
		}
		c := int(b[off])
		switch {
		case c == 0:
			if !jumped {
				end = off + 1
			}
			name := strings.Join(labels, ".")
			return name, end, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, errShort
			}
			ptr := (c&0x3f)<<8 | int(b[off+1])
			if !jumped {
				end = off + 2
			}
			jumped = true
			hops++
			if hops > 32 {
				return "", 0, errPtrLoop
			}
			off = ptr
		case c&0xc0 != 0:
			return "", 0, errBadName
		default:
			if off+1+c > len(b) {
				return "", 0, errShort
			}
			total += c + 1
			if total > 255 {
				return "", 0, errNameSize
			}
			labels = append(labels, string(b[off+1:off+1+c]))
			off += 1 + c
		}
	}
}

// SLD returns the second-level domain of a host name, e.g.
// "devs.tplinkcloud.com" → "tplinkcloud.com". Multi-part public suffixes
// common in our simulated zones (co.uk, com.cn, com.sg) are handled.
func SLD(name string) string {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	parts := strings.Split(name, ".")
	if len(parts) < 2 {
		return name
	}
	tldIdx := len(parts) - 1
	// Effective TLDs with two labels.
	two := parts[len(parts)-2] + "." + parts[len(parts)-1]
	switch two {
	case "co.uk", "org.uk", "ac.uk", "gov.uk",
		"com.cn", "net.cn", "org.cn",
		"com.sg", "com.au", "co.jp", "co.kr", "com.br":
		if len(parts) < 3 {
			return name
		}
		tldIdx = len(parts) - 2
	}
	return strings.Join(parts[tldIdx-1:], ".")
}

func be16(b []byte) uint16       { return uint16(b[0])<<8 | uint16(b[1]) }
func be16put(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func append16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}
