// Package service is the long-running half of the paper reproduction:
// the engine behind the moniotrd daemon. Where cmd/moniotr runs one
// campaign and exits, this package runs campaigns continuously — on
// calendar schedules, on demand over HTTP, or against uploaded capture
// archives — and serves the resulting paper tables as JSON.
//
// The package is built from four pieces, each usable on its own:
//
//   - Clock abstracts time. RealClock delegates to package time;
//     SimClock is manually advanced, which makes every time-dependent
//     component here simulation-testable: a week of daily fires runs in
//     microseconds, with no sleeps and no flakiness.
//
//   - Schedule (Every, DailyAt, OnDays, ParseSchedule) decides when a
//     recurring campaign fires. Schedules are pure functions of time;
//     daily schedules do calendar arithmetic in a time.Location, so
//     they fire once per civil day across DST transitions.
//
//   - Manager owns the job queue: a bounded channel feeding a fixed
//     worker pool, so at most -max-jobs campaigns run concurrently and
//     a full queue rejects rather than buffering without bound. Jobs
//     run the same pipeline as the CLI — synthesis or capture ingestion
//     (streaming included), per-job fault profiles, parallel analysis —
//     under a context that Shutdown cancels after a grace period, which
//     the pipeline observes mid-stage.
//
//   - Server is the HTTP layer: JSON endpoints for campaigns, jobs and
//     reports, tar capture uploads feeding streaming ingestion, the
//     obs metrics snapshot, and a small embedded HTML dashboard. Report
//     JSON comes from the same report.Document renderer as
//     `moniotr -json`, so the two are byte-identical for the same
//     campaign.
//
// The Scheduler ties the first three together: its core is the pure
// Tick(now) step, wrapped by Run (real daemon) or Simulate (tests and
// moniotrd -simulate).
package service
