package service

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts wall time for the scheduler and job manager. The real
// implementation delegates to package time; SimClock replaces it in
// tests and under moniotrd's -simulate flag, where schedule horizons of
// days are crossed in microseconds of real time.
type Clock interface {
	// Now returns the current (possibly simulated) time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

// SimClock is a manually advanced clock. Time moves only when Advance
// or AdvanceTo is called; waiters registered through After fire — in
// deadline order, ties in registration order — as the clock passes
// their deadlines. The zero value is not usable; create one with
// NewSimClock.
type SimClock struct {
	mu      sync.Mutex
	now     time.Time
	seq     int
	waiters []*simWaiter
}

type simWaiter struct {
	at  time.Time
	seq int
	ch  chan time.Time
}

// NewSimClock returns a simulated clock frozen at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After registers a waiter due at Now()+d. A non-positive d fires
// immediately.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.seq++
	c.waiters = append(c.waiters, &simWaiter{at: c.now.Add(d), seq: c.seq, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing due waiters.
func (c *SimClock) Advance(d time.Duration) { c.AdvanceTo(c.Now().Add(d)) }

// AdvanceTo moves the clock to t (never backwards), firing every waiter
// whose deadline is at or before t, in deadline order.
func (c *SimClock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		return
	}
	due := c.waiters[:0:0]
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(t) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	sort.Slice(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		return due[i].seq < due[j].seq
	})
	for _, w := range due {
		w.ch <- w.at
	}
	c.now = t
}
