package service

import (
	"testing"
	"time"
	_ "time/tzdata" // DST tests must not depend on a host zoneinfo dir
)

func TestParseScheduleRoundTrip(t *testing.T) {
	ny, err := time.LoadLocation("America/New_York")
	if err != nil {
		t.Fatal(err)
	}
	// String() appends the location for wall-clock forms; ParseSchedule
	// takes it separately.
	for _, tc := range []struct{ in, want string }{
		{"every 6h", "every 6h0m0s"},
		{"every 90s", "every 1m30s"},
		{"daily 03:30", "daily 03:30 America/New_York"},
		{"on thu,mon 03:30", "on mon,thu 03:30 America/New_York"},
		{"on SUN 00:00", "on sun 00:00 America/New_York"},
	} {
		s, err := ParseSchedule(tc.in, ny)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", tc.in, err)
		}
		if got := s.String(); got != tc.want {
			t.Errorf("ParseSchedule(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"", "hourly", "every", "every bananas", "every 500ms",
		"daily", "daily 3:61", "daily 24:00", "daily 03:30 extra",
		"on mon", "on monday 03:30", "on mon,xyz 03:30",
	} {
		if _, err := ParseSchedule(spec, time.UTC); err == nil {
			t.Errorf("ParseSchedule(%q): want error", spec)
		}
	}
}

func TestEveryAnchorsToPreviousFire(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	s := Every(6 * time.Hour)
	if got := s.Next(t0); !got.Equal(t0.Add(6 * time.Hour)) {
		t.Fatalf("Next = %v", got)
	}
}

func TestOnDaysSkipsToSelectedWeekday(t *testing.T) {
	// 2026-03-02 is a Monday.
	mon := time.Date(2026, 3, 2, 12, 0, 0, 0, time.UTC)
	s := OnDays([]time.Weekday{time.Thursday}, 9, 0, time.UTC)
	got := s.Next(mon)
	want := time.Date(2026, 3, 5, 9, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
	// From just before Thursday's fire, the same Thursday fires.
	if got := s.Next(want.Add(-time.Minute)); !got.Equal(want) {
		t.Fatalf("Next = %v, want %v", got, want)
	}
	// From the fire itself, next week's Thursday.
	if got := s.Next(want); !got.Equal(want.AddDate(0, 0, 7)) {
		t.Fatalf("Next = %v, want %v", got, want.AddDate(0, 0, 7))
	}
}

// The DST test the scheduler's correctness hangs on: a daily schedule
// must fire exactly once per calendar day through both transitions —
// the 23-hour day when 02:30 does not exist (America/New_York springs
// forward 2026-03-08) and the 25-hour day when 01:30 happens twice
// (falls back 2026-11-01).
func TestDailyFiresOncePerDayAcrossDST(t *testing.T) {
	ny, err := time.LoadLocation("America/New_York")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		start  time.Time
		hh, mm int
	}{
		{"spring-forward-nonexistent-time", time.Date(2026, 3, 6, 0, 0, 0, 0, ny), 2, 30},
		{"spring-forward-unaffected-time", time.Date(2026, 3, 6, 0, 0, 0, 0, ny), 12, 0},
		{"fall-back-ambiguous-time", time.Date(2026, 10, 30, 0, 0, 0, 0, ny), 1, 30},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := DailyAt(tc.hh, tc.mm, ny)
			now := tc.start
			seen := map[string]int{} // civil date -> fires
			for i := 0; i < 7; i++ {
				next := s.Next(now)
				if !next.After(now) {
					t.Fatalf("fire %d: Next(%v) = %v not after", i, now, next)
				}
				seen[next.In(ny).Format("2006-01-02")]++
				now = next
			}
			if len(seen) != 7 {
				t.Fatalf("7 fires covered %d days: %v", len(seen), seen)
			}
			for day, n := range seen {
				if n != 1 {
					t.Errorf("day %s fired %d times", day, n)
				}
			}
		})
	}

	// The nonexistent 02:30 on 2026-03-08 must normalize into that same
	// civil day (Go maps it to an adjacent real instant), not skip the
	// day — and the following fire must land back on 02:30 the next day.
	s := DailyAt(2, 30, ny)
	fire := s.Next(time.Date(2026, 3, 7, 12, 0, 0, 0, ny))
	if got := fire.In(ny).Format("2006-01-02"); got != "2026-03-08" {
		t.Fatalf("spring-forward fire landed on %s, want 2026-03-08 (at %v)", got, fire.In(ny))
	}
	after := s.Next(fire)
	want := time.Date(2026, 3, 9, 2, 30, 0, 0, ny)
	if !after.Equal(want) {
		t.Fatalf("post-DST fire = %v, want %v", after.In(ny), want)
	}
}

func TestSimClockFiresWaitersInDeadlineOrder(t *testing.T) {
	c := NewSimClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	late := c.After(2 * time.Hour)
	early := c.After(time.Hour)
	none := c.After(3 * time.Hour)
	c.Advance(2 * time.Hour)
	if got := <-early; !got.Equal(c.Now().Add(-time.Hour)) {
		t.Fatalf("early waiter fired at %v", got)
	}
	if got := <-late; !got.Equal(c.Now()) {
		t.Fatalf("late waiter fired at %v", got)
	}
	select {
	case <-none:
		t.Fatal("waiter fired before its deadline")
	default:
	}
	// Never backwards.
	c.AdvanceTo(c.Now().Add(-time.Hour))
	if got := c.Now(); !got.Equal(time.Date(2026, 1, 1, 2, 0, 0, 0, time.UTC)) {
		t.Fatalf("clock moved backwards to %v", got)
	}
}
