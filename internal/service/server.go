package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/obs"
)

// ServerConfig wires a Server to the daemon's moving parts.
type ServerConfig struct {
	Manager   *Manager
	Scheduler *Scheduler
	// Metrics backs /metrics and the request instrumentation; nil
	// disables both (the endpoint then serves an empty snapshot).
	Metrics *obs.Registry
	// Clock is used for uptime and request timing (default wall clock).
	Clock Clock
	// DataDir is where capture uploads are spooled (default: a fresh
	// directory under os.TempDir).
	DataDir string
	// MaxUploadBytes and MaxUploadFiles cap one /api/upload archive:
	// unpacked bytes and capture-file count. Uploads beyond either cap
	// are rejected with 413. Non-positive values use the package
	// defaults (DefaultMaxUploadBytes, DefaultMaxUploadFiles).
	MaxUploadBytes int64
	MaxUploadFiles int
	// Logf receives one structured line per request; nil discards.
	Logf func(format string, args ...any)
}

// Default /api/upload caps, re-exported from internal/ingest so
// cmd/moniotrd can print them as flag defaults.
const (
	DefaultMaxUploadBytes = ingest.MaxUploadBytes
	DefaultMaxUploadFiles = ingest.MaxUploadFiles
)

// Server is moniotrd's HTTP API: campaign status and control as JSON,
// capture uploads feeding streaming ingestion, the metrics snapshot,
// and an embedded HTML dashboard. Build one with NewServer and mount
// Handler on an http.Server.
type Server struct {
	cfg     ServerConfig
	clock   Clock
	logf    func(string, ...any)
	metrics *obs.Registry
	mux     *http.ServeMux
	started time.Time
}

// NewServer builds the HTTP layer over a job manager and scheduler.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{
		cfg:     cfg,
		clock:   cfg.Clock,
		logf:    cfg.Logf,
		metrics: cfg.Metrics,
		mux:     http.NewServeMux(),
	}
	if s.clock == nil {
		s.clock = RealClock()
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.started = s.clock.Now()

	s.mux.HandleFunc("GET /{$}", s.handleDashboard)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	s.mux.HandleFunc("GET /api/schedules", s.handleSchedules)
	s.mux.HandleFunc("GET /api/jobs", s.handleJobs)
	s.mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("POST /api/upload", s.handleUpload)
	return s
}

// Handler returns the server's root handler, with request logging and
// metrics instrumentation applied.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with structured request logging and
// http_* metrics. One line per request: method, path, status, bytes
// read, duration.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := s.clock.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, req)
		elapsed := s.clock.Now().Sub(start)
		s.metrics.Counter("http_requests_total").Inc()
		if rec.status >= 500 {
			s.metrics.Counter("http_errors_total").Inc()
		}
		s.metrics.Histogram("http_request_seconds", []float64{.001, .01, .1, 1, 10}).
			Observe(elapsed.Seconds())
		s.logf("http method=%s path=%s status=%d dur=%s", req.Method, req.URL.Path, rec.status, elapsed.Round(time.Microsecond))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// DaemonStatus is the /api/status payload.
type DaemonStatus struct {
	Now           string           `json:"now"`
	Started       string           `json:"started"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Draining      bool             `json:"draining"`
	QueueDepth    int              `json:"queue_depth"`
	Jobs          map[JobState]int `json:"jobs"`
	Schedules     []EntryStatus    `json:"schedules"`
}

// Status snapshots the daemon for /api/status (exported for the CLI's
// -simulate summary and tests).
func (s *Server) Status() DaemonStatus {
	now := s.clock.Now()
	st := DaemonStatus{
		Now:           rfc3339(now),
		Started:       rfc3339(s.started),
		UptimeSeconds: now.Sub(s.started).Seconds(),
		Schedules:     []EntryStatus{},
		Jobs:          map[JobState]int{},
	}
	if s.cfg.Manager != nil {
		st.Draining = s.cfg.Manager.isDraining()
		st.QueueDepth = s.cfg.Manager.QueueDepth()
		st.Jobs = s.cfg.Manager.Counts()
	}
	if s.cfg.Scheduler != nil {
		st.Schedules = s.cfg.Scheduler.Entries()
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Server) handleSchedules(w http.ResponseWriter, _ *http.Request) {
	entries := []EntryStatus{}
	if s.cfg.Scheduler != nil {
		entries = s.cfg.Scheduler.Entries()
	}
	writeJSON(w, http.StatusOK, entries)
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := []JobStatus{}
	if s.cfg.Manager != nil {
		jobs = s.cfg.Manager.Jobs()
	}
	writeJSON(w, http.StatusOK, jobs)
}

// handleSubmit queues a campaign from a JSON JobSpec body. 202 with the
// job status on success; 503 when the queue is full or the daemon is
// draining.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if s.cfg.Manager == nil {
		writeError(w, http.StatusServiceUnavailable, "no job manager")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if spec.CaptureDir != "" {
		// Arbitrary paths would let a request read any directory the
		// daemon can; captures arrive through /api/upload instead.
		writeError(w, http.StatusBadRequest, "capture_dir is not accepted here; POST the archive to /api/upload")
		return
	}
	spec.Origin = "api"
	s.submit(w, spec)
}

func (s *Server) submit(w http.ResponseWriter, spec JobSpec) {
	job, err := s.cfg.Manager.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "job queue full")
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "daemon is shutting down")
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, req *http.Request) {
	job, ok := s.lookup(w, req)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleReport serves a finished job's paper tables as one canonical
// JSON document — the same bytes `moniotr -json` prints for the same
// campaign. ?tables=1,5,pii filters by table key.
func (s *Server) handleReport(w http.ResponseWriter, req *http.Request) {
	job, ok := s.lookup(w, req)
	if !ok {
		return
	}
	doc := job.Document()
	if doc == nil {
		switch job.State() {
		case JobFailed, JobCanceled:
			writeError(w, http.StatusConflict, "job %s %s: %s", job.ID, job.State(), job.Err())
		default:
			writeError(w, http.StatusConflict, "job %s is %s; report not ready", job.ID, job.State())
		}
		return
	}
	if tables := req.URL.Query().Get("tables"); tables != "" && tables != "all" {
		want := map[string]bool{}
		for _, t := range strings.Split(tables, ",") {
			want[strings.TrimSpace(t)] = true
		}
		doc = doc.Filter(func(key string) bool { return want[key] })
	}
	w.Header().Set("Content-Type", "application/json")
	doc.RenderJSON(w)
}

func (s *Server) lookup(w http.ResponseWriter, req *http.Request) (*Job, bool) {
	if s.cfg.Manager == nil {
		writeError(w, http.StatusNotFound, "no job manager")
		return nil, false
	}
	id := req.PathValue("id")
	job, ok := s.cfg.Manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return nil, false
	}
	return job, true
}

// handleUpload accepts a tar archive of a Mon(IoT)r capture directory
// (as written by `moniotr -export-captures`; `tar -cf - -C dir .`),
// spools it under DataDir, and queues a streaming-ingest job over it.
// Query parameters: stream=0 buffers instead, window=N sets the reorder
// window, two_pass=1 forces the legacy index+replay streaming shape
// (default is the single-decode fold pass), strict=1 fails the job if
// anything is skipped, workers=N bounds analysis parallelism.
func (s *Server) handleUpload(w http.ResponseWriter, req *http.Request) {
	if s.cfg.Manager == nil {
		writeError(w, http.StatusServiceUnavailable, "no job manager")
		return
	}
	q := req.URL.Query()
	spec := JobSpec{
		Origin:    "upload",
		RemoveDir: true,
		Stream:    q.Get("stream") != "0",
		TwoPass:   q.Get("two_pass") == "1",
		Strict:    q.Get("strict") == "1",
	}
	var err error
	if v := q.Get("window"); v != "" {
		if spec.Window, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, "bad window: %v", err)
			return
		}
	}
	if v := q.Get("workers"); v != "" {
		if spec.Workers, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, "bad workers: %v", err)
			return
		}
	}
	dataDir := s.cfg.DataDir
	if dataDir == "" {
		dataDir = os.TempDir()
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		writeError(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	dir, err := os.MkdirTemp(dataDir, "upload-*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	files, bytes, skipped, err := ingest.UnpackTarLimited(dir, req.Body, s.cfg.MaxUploadFiles, s.cfg.MaxUploadBytes)
	if err != nil {
		os.RemoveAll(dir)
		if errors.Is(err, ingest.ErrUploadTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "unpack: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "unpack: %v", err)
		return
	}
	if files == 0 {
		os.RemoveAll(dir)
		writeError(w, http.StatusBadRequest, "archive holds no .pcap/.labels files")
		return
	}
	s.metrics.Counter("uploads_total").Inc()
	s.metrics.Counter("upload_bytes_total").Add(bytes)
	s.logf("upload: %d files, %s, %d entries skipped -> %s", files, obs.HumanBytes(bytes), skipped, dir)
	spec.CaptureDir = dir
	s.submit(w, spec)
}
