package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"github.com/neu-sns/intl-iot-go/internal/report"
	"github.com/neu-sns/intl-iot-go/internal/service"
)

// NewServer shows the daemon's engine used as a library: build a job
// manager, register a daily schedule, fast-forward a simulated clock
// through one fire, and read the finished job's report back through the
// HTTP API — all deterministic, no real time passes. The Run hook
// stands in for the full campaign (the built-in runner synthesizes or
// ingests a real one).
func ExampleNewServer() {
	clock := service.NewSimClock(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	mgr := service.NewManager(service.ManagerConfig{
		Clock: clock,
		Run: func(ctx context.Context, job *service.Job) error {
			tbl := &report.Table{Title: "Devices by destination party", Headers: []string{"Device", "Third parties"}}
			tbl.AddRow("camera-1", "2")
			doc := &report.Document{}
			doc.Add("headline", tbl)
			job.SetDocument(doc)
			return nil
		},
	})
	mgr.Start()
	defer mgr.Shutdown(0)

	sched := service.NewScheduler(clock, mgr, nil)
	sched.Add("nightly", service.DailyAt(3, 30, time.UTC), service.JobSpec{Scale: "tiny"})
	srv := service.NewServer(service.ServerConfig{Manager: mgr, Scheduler: sched, Clock: clock})

	// One simulated day: the schedule fires once and the job completes.
	jobs, err := sched.Simulate(context.Background(), clock, clock.Now().Add(24*time.Hour))
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	job := jobs[0]
	fmt.Printf("%s %s state=%s\n", job.ID, job.Spec.Origin, job.State())

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/api/jobs/"+job.ID+"/report", nil)
	srv.Handler().ServeHTTP(rec, req)
	doc, err := report.DecodeDocument(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		fmt.Println("decode:", err)
		return
	}
	fmt.Printf("report %d: %s: %q\n", rec.Code, doc.Entries[0].Key, doc.Entries[0].Table.Title)
	// Output:
	// job-0001 schedule:nightly state=done
	// report 200: headline: "Devices by destination party"
}
