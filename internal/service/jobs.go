package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	intliot "github.com/neu-sns/intl-iot-go"
	"github.com/neu-sns/intl-iot-go/internal/faults"
	"github.com/neu-sns/intl-iot-go/internal/fleet"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/report"
	"github.com/neu-sns/intl-iot-go/internal/reshape"
)

// JobSpec describes one campaign to run: either a synthesized campaign
// at a named scale, or the ingestion of an on-disk capture directory
// (an upload, or an operator-provided path). The zero value plus one of
// Scale/CaptureDir is a valid spec.
type JobSpec struct {
	// Origin records who asked for the job ("schedule:<name>", "upload",
	// "api"); it is informational.
	Origin string `json:"origin,omitempty"`
	// Scale names the synthesis campaign size (intliot.ScaleConfig);
	// ignored when CaptureDir is set. Empty means "tiny".
	Scale string `json:"scale,omitempty"`
	// CaptureDir replays a Mon(IoT)r capture tree instead of
	// synthesizing.
	CaptureDir string `json:"capture_dir,omitempty"`
	// RemoveDir deletes CaptureDir when the job finishes; the upload
	// handler sets it so spooled archives don't accumulate.
	RemoveDir bool `json:"-"`
	// Stream and Window select bounded-memory streaming ingestion
	// (ingest.Options); uploads default to streaming. TwoPass forces the
	// legacy index+replay shape instead of the single-decode fold pass.
	Stream  bool `json:"stream,omitempty"`
	Window  int  `json:"window,omitempty"`
	TwoPass bool `json:"two_pass,omitempty"`
	// Strict fails an ingest job whose report skipped anything.
	Strict bool `json:"strict,omitempty"`
	// FaultProfile/FaultSeed run a synthesis campaign over an impaired
	// network (internal/faults); per-job, so one schedule can run clean
	// and another lossy.
	FaultProfile string `json:"faults,omitempty"`
	FaultSeed    int64  `json:"fault_seed,omitempty"`
	// Reshape applies a traffic-reshaping defense stack
	// (internal/reshape; comma-separated "pad,shape,dummy,vpn") to the
	// campaign — synthesized or ingested — before any analysis sees it.
	// ReshapeSeed seeds the engine (0 = campaign seed) and ReshapeBudget
	// is the overhead budget in [0, 1].
	Reshape       string  `json:"reshape,omitempty"`
	ReshapeSeed   int64   `json:"reshape_seed,omitempty"`
	ReshapeBudget float64 `json:"reshape_budget,omitempty"`
	// Workers bounds analysis parallelism (0 = one per core). Fleet
	// jobs reuse it as cross-home parallelism.
	Workers int `json:"workers,omitempty"`
	// Uncontrolled adds the §7.3 user-study leg (synthesis jobs only).
	Uncontrolled bool `json:"uncontrolled,omitempty"`
	// FleetHomes, when positive, replaces the two-lab study with a
	// fleet-scale campaign of N simulated homes (internal/fleet);
	// FleetSeed derives the whole fleet (0 means seed 1). Scale,
	// FaultProfile and Uncontrolled do not apply — homes draw their own
	// fault profiles.
	FleetHomes int   `json:"fleet,omitempty"`
	FleetSeed  int64 `json:"fleet_seed,omitempty"`
}

// validate rejects specs that would only fail after queueing.
func (s JobSpec) validate() error {
	if _, err := faults.ByName(s.FaultProfile); err != nil {
		return err
	}
	if _, err := reshape.ParseStack(s.Reshape); err != nil {
		return err
	}
	if s.ReshapeBudget < 0 || s.ReshapeBudget > 1 {
		return fmt.Errorf("service: reshape budget %v out of range [0, 1]", s.ReshapeBudget)
	}
	if s.CaptureDir == "" {
		scale := s.Scale
		if scale == "" {
			scale = "tiny"
		}
		if _, err := intliot.ScaleConfig(scale); err != nil {
			return err
		}
	}
	if s.Window < 0 || s.Workers < 0 {
		return fmt.Errorf("service: negative window/workers")
	}
	if s.FleetHomes < 0 || s.FleetHomes > fleet.MaxHomes {
		return fmt.Errorf("service: fleet size %d out of range [0, %d]", s.FleetHomes, fleet.MaxHomes)
	}
	if s.FleetHomes > 0 && s.CaptureDir != "" {
		return fmt.Errorf("service: a job is either a fleet campaign or a capture ingest, not both")
	}
	return nil
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Job is one queued or executed campaign.
type Job struct {
	ID   string
	Spec JobSpec

	mu        sync.Mutex
	state     JobState
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	ingest    *ingest.Report
	doc       *report.Document
	done      chan struct{}
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the failure message ("" unless state is failed).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// SetDocument attaches the job's report document. The built-in runner
// calls it with the campaign's canonical document; custom
// ManagerConfig.Run hooks call it to make their result visible to the
// report API.
func (j *Job) SetDocument(doc *report.Document) {
	j.mu.Lock()
	j.doc = doc
	j.mu.Unlock()
}

// Document returns the job's report document, or nil until the job is
// done.
func (j *Job) Document() *report.Document {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return nil
	}
	return j.doc
}

// JobStatus is the JSON-facing snapshot of a job. Times are RFC 3339
// strings (empty until reached) so queued jobs don't render zero times.
type JobStatus struct {
	ID              string   `json:"id"`
	Origin          string   `json:"origin,omitempty"`
	State           JobState `json:"state"`
	Error           string   `json:"error,omitempty"`
	Scale           string   `json:"scale,omitempty"`
	Fleet           int      `json:"fleet,omitempty"`
	Ingesting       bool     `json:"ingesting,omitempty"`
	Submitted       string   `json:"submitted"`
	Started         string   `json:"started,omitempty"`
	Finished        string   `json:"finished,omitempty"`
	DurationSeconds float64  `json:"duration_seconds,omitempty"`
	Ingest          string   `json:"ingest,omitempty"`
}

// Status snapshots the job for serialization.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Origin:    j.Spec.Origin,
		State:     j.state,
		Error:     j.errMsg,
		Scale:     j.Spec.Scale,
		Fleet:     j.Spec.FleetHomes,
		Ingesting: j.Spec.CaptureDir != "",
		Submitted: rfc3339(j.submitted),
		Started:   rfc3339(j.started),
		Finished:  rfc3339(j.finished),
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		st.DurationSeconds = j.finished.Sub(j.started).Seconds()
	}
	if j.ingest != nil {
		st.Ingest = j.ingest.String()
	}
	return st
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = now
	j.mu.Unlock()
}

func (j *Job) finish(now time.Time, state JobState, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	j.mu.Unlock()
	close(j.done)
}

// Submission errors the HTTP layer maps to status codes.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: shutting down")
)

// ManagerConfig sizes a job manager.
type ManagerConfig struct {
	// Workers is the number of jobs run concurrently (default 1).
	Workers int
	// Queue is the number of jobs held beyond the running ones before
	// Submit rejects with ErrQueueFull (default 8).
	Queue int
	// Clock defaults to the wall clock.
	Clock Clock
	// Metrics receives job counters and durations; nil disables.
	Metrics *obs.Registry
	// Logf receives job lifecycle lines; nil discards.
	Logf func(format string, args ...any)
	// Run overrides job execution, for tests. nil runs the real
	// campaign (Manager.runStudy).
	Run func(ctx context.Context, job *Job) error
}

// Manager owns the job queue: a bounded channel feeding a fixed worker
// pool, so at most Workers campaigns run at once and at most Queue more
// wait. Shutdown drains in-flight jobs for a grace period, then cancels
// their context — which the analysis pipeline observes mid-stage.
type Manager struct {
	cfg     ManagerConfig
	clock   Clock
	logf    func(string, ...any)
	metrics *obs.Registry
	run     func(context.Context, *Job) error

	queue     chan *Job
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	jobs     []*Job
	byID     map[string]*Job
	seq      int
	draining bool
	started  bool
}

// NewManager builds a manager; call Start before Submit.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 8
	}
	m := &Manager{
		cfg:     cfg,
		clock:   cfg.Clock,
		logf:    cfg.Logf,
		metrics: cfg.Metrics,
		run:     cfg.Run,
		queue:   make(chan *Job, cfg.Queue),
		byID:    make(map[string]*Job),
	}
	if m.clock == nil {
		m.clock = RealClock()
	}
	if m.logf == nil {
		m.logf = func(string, ...any) {}
	}
	if m.run == nil {
		m.run = m.runStudy
	}
	m.runCtx, m.cancelRun = context.WithCancel(context.Background())
	return m
}

// Start launches the worker pool. It is idempotent.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// Submit queues a job. It never blocks: a full queue returns
// ErrQueueFull (the HTTP layer's 503), a draining manager ErrDraining,
// and an invalid spec the validation error.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	job := &Job{
		ID:        fmt.Sprintf("job-%04d", m.seq+1),
		Spec:      spec,
		state:     JobQueued,
		submitted: m.clock.Now(),
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.metrics.Counter("jobs_rejected_total").Inc()
		return nil, ErrQueueFull
	}
	m.seq++
	m.jobs = append(m.jobs, job)
	m.byID[job.ID] = job
	m.metrics.Counter("jobs_submitted_total").Inc()
	m.metrics.Gauge("jobs_queued").Set(float64(len(m.queue)))
	m.logf("job %s submitted (%s)", job.ID, describe(spec))
	return job, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	return j, ok
}

// Jobs snapshots every job in submission order.
func (m *Manager) Jobs() []JobStatus {
	m.mu.Lock()
	jobs := append([]*Job(nil), m.jobs...)
	m.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Counts tallies jobs by state.
func (m *Manager) Counts() map[JobState]int {
	out := make(map[JobState]int)
	for _, st := range m.Jobs() {
		out[st.State]++
	}
	return out
}

// QueueDepth returns the number of jobs waiting to start.
func (m *Manager) QueueDepth() int { return len(m.queue) }

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Shutdown stops the manager: no new submissions, queued jobs are
// cancelled, and in-flight jobs get grace to drain before their context
// is cancelled — at which point the analysis pipeline aborts mid-stage
// and the jobs finish as cancelled. Shutdown returns once every worker
// has exited. A non-positive grace cancels immediately.
func (m *Manager) Shutdown(grace time.Duration) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.draining = true
	started := m.started
	m.mu.Unlock()
	close(m.queue)
	if !started {
		// No workers: cancel whatever sits in the queue ourselves.
		for job := range m.queue {
			job.finish(m.clock.Now(), JobCanceled, "daemon shutting down")
		}
		return
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
			return
		case <-m.clock.After(grace):
			m.logf("shutdown grace %v expired; cancelling in-flight jobs", grace)
		}
	}
	m.cancelRun()
	<-done
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.metrics.Gauge("jobs_queued").Set(float64(len(m.queue)))
		if m.isDraining() {
			job.finish(m.clock.Now(), JobCanceled, "daemon shutting down")
			m.metrics.Counter("jobs_canceled_total").Inc()
			m.logf("job %s cancelled before start", job.ID)
			continue
		}
		m.runOne(job)
	}
}

func (m *Manager) runOne(job *Job) {
	job.setRunning(m.clock.Now())
	m.metrics.Gauge("jobs_running").Add(1)
	m.logf("job %s running", job.ID)
	err := m.run(m.runCtx, job)
	now := m.clock.Now()
	switch {
	case errors.Is(err, context.Canceled):
		job.finish(now, JobCanceled, "cancelled during shutdown")
		m.metrics.Counter("jobs_canceled_total").Inc()
	case err != nil:
		job.finish(now, JobFailed, err.Error())
		m.metrics.Counter("jobs_failed_total").Inc()
	default:
		job.finish(now, JobDone, "")
		m.metrics.Counter("jobs_done_total").Inc()
	}
	st := job.Status()
	m.metrics.Histogram("job_seconds", []float64{1, 10, 60, 600, 3600}).
		Observe(st.DurationSeconds)
	m.metrics.Gauge("jobs_running").Add(-1)
	m.logf("job %s %s (%.2fs)", job.ID, st.State, st.DurationSeconds)
}

// runStudy executes a job's campaign for real: build the study
// (synthesis or capture ingestion), run the full analysis pipeline
// under the shutdown context, and capture the canonical report
// document. It is the default ManagerConfig.Run.
func (m *Manager) runStudy(ctx context.Context, job *Job) error {
	spec := job.Spec
	if spec.FleetHomes > 0 {
		seed := spec.FleetSeed
		if seed == 0 {
			seed = 1
		}
		agg, err := fleet.Run(ctx, fleet.Config{
			Homes:   spec.FleetHomes,
			Seed:    seed,
			Workers: spec.Workers,
		}, m.metrics)
		if err != nil {
			return err
		}
		job.SetDocument(report.FleetDocument(agg))
		return nil
	}
	var study *intliot.Study
	var src *ingest.Source
	if spec.CaptureDir != "" {
		if spec.RemoveDir {
			defer os.RemoveAll(spec.CaptureDir)
		}
		var err error
		src, err = ingest.Open(spec.CaptureDir, ingest.Options{
			Stream:  spec.Stream,
			Window:  spec.Window,
			TwoPass: spec.TwoPass,
		})
		if err != nil {
			return err
		}
		// Ingested captures carry no campaign seed; seed 1 is the
		// documented default for defended replays.
		eng, err := intliot.NewReshapeEngine(intliot.Config{
			Seed: 1, Reshape: spec.Reshape,
			ReshapeSeed: spec.ReshapeSeed, ReshapeBudget: spec.ReshapeBudget,
		})
		if err != nil {
			return err
		}
		study = intliot.NewStudyFromSource(reshape.Wrap(src, eng))
	} else {
		scale := spec.Scale
		if scale == "" {
			scale = "tiny"
		}
		cfg, err := intliot.ScaleConfig(scale)
		if err != nil {
			return err
		}
		cfg.FaultProfile = spec.FaultProfile
		cfg.FaultSeed = spec.FaultSeed
		cfg.Reshape = spec.Reshape
		cfg.ReshapeSeed = spec.ReshapeSeed
		cfg.ReshapeBudget = spec.ReshapeBudget
		study, err = intliot.NewStudy(cfg)
		if err != nil {
			return err
		}
	}
	study.SetAnalysisWorkers(spec.Workers)
	study.SetContext(ctx)
	study.SetObs(m.metrics)
	study.Run()
	if study.Aborted() {
		return context.Canceled
	}
	if src != nil {
		rep := src.Report()
		job.mu.Lock()
		job.ingest = &rep
		job.mu.Unlock()
		if spec.Strict {
			if err := rep.Strict(); err != nil {
				return err
			}
		}
	}
	if spec.Uncontrolled && spec.CaptureDir == "" {
		if err := study.RunUncontrolled(); err != nil {
			return err
		}
		if study.Aborted() {
			return context.Canceled
		}
	}
	job.SetDocument(study.ReportDocument())
	return nil
}

func describe(spec JobSpec) string {
	if spec.FleetHomes > 0 {
		return fmt.Sprintf("fleet of %d homes", spec.FleetHomes)
	}
	if spec.CaptureDir != "" {
		mode := "buffered"
		if spec.Stream {
			mode = "streaming"
		}
		return fmt.Sprintf("ingest %s, %s", spec.CaptureDir, mode)
	}
	scale := spec.Scale
	if scale == "" {
		scale = "tiny"
	}
	desc := "synthesize " + scale
	if spec.FaultProfile != "" && spec.FaultProfile != "clean" {
		desc += ", faults=" + spec.FaultProfile
	}
	if stack, _ := reshape.ParseStack(spec.Reshape); len(stack) > 0 {
		desc += fmt.Sprintf(", reshape=%s@%.2f", spec.Reshape, spec.ReshapeBudget)
	}
	return desc
}
