package service

import (
	"context"
	"testing"
	"time"
	_ "time/tzdata"
)

func instantRun(ctx context.Context, job *Job) error { return nil }

func newTestScheduler(t *testing.T, clock Clock, workers, queue int) (*Scheduler, *Manager) {
	t.Helper()
	m := NewManager(ManagerConfig{Workers: workers, Queue: queue, Clock: clock, Run: instantRun})
	m.Start()
	t.Cleanup(func() { m.Shutdown(0) })
	return NewScheduler(clock, m, nil), m
}

func TestTickFiresDueEntriesOnce(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	clock := NewSimClock(t0)
	s, _ := newTestScheduler(t, clock, 1, 8)
	s.Add("hourly", Every(time.Hour), JobSpec{Scale: "tiny"})

	if jobs := s.Tick(t0.Add(30 * time.Minute)); len(jobs) != 0 {
		t.Fatalf("fired %d jobs before due", len(jobs))
	}
	jobs := s.Tick(t0.Add(time.Hour))
	if len(jobs) != 1 {
		t.Fatalf("fired %d jobs at due time, want 1", len(jobs))
	}
	if got := jobs[0].Spec.Origin; got != "schedule:hourly" {
		t.Fatalf("origin = %q", got)
	}
	// The same instant must not double-fire.
	if jobs := s.Tick(t0.Add(time.Hour)); len(jobs) != 0 {
		t.Fatalf("re-tick fired %d jobs", len(jobs))
	}
	if next := s.NextFire(); !next.Equal(t0.Add(2 * time.Hour)) {
		t.Fatalf("next fire = %v", next)
	}
}

// A tick that lands long after several missed fires coalesces them into
// one job (next is computed from now, not stacked per missed interval).
func TestTickCoalescesMissedFires(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	clock := NewSimClock(t0)
	s, _ := newTestScheduler(t, clock, 1, 8)
	s.Add("hourly", Every(time.Hour), JobSpec{})
	if jobs := s.Tick(t0.Add(10 * time.Hour)); len(jobs) != 1 {
		t.Fatalf("fired %d jobs after 10 missed hours, want 1", len(jobs))
	}
	if next := s.NextFire(); !next.Equal(t0.Add(11 * time.Hour)) {
		t.Fatalf("next fire = %v", next)
	}
}

// The headline scheduler property: simulated across a week that
// contains the spring-forward transition, a daily schedule fires
// exactly once per calendar day — 7 jobs, 7 distinct civil dates —
// without the test ever sleeping.
func TestSimulateDailyAcrossDSTWeek(t *testing.T) {
	ny, err := time.LoadLocation("America/New_York")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2026, 3, 6, 0, 0, 0, 0, ny) // DST starts 2026-03-08 02:00
	clock := NewSimClock(start)
	s, _ := newTestScheduler(t, clock, 1, 8)
	entry := s.Add("nightly", DailyAt(2, 30, ny), JobSpec{Scale: "tiny"})

	jobs, err := s.Simulate(context.Background(), clock, start.AddDate(0, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 7 {
		t.Fatalf("fired %d jobs over 7 days, want 7", len(jobs))
	}
	days := map[string]int{}
	for _, job := range jobs {
		if job.State() != JobDone {
			t.Fatalf("job %s = %s", job.ID, job.State())
		}
		st := job.Status()
		fired, err := time.Parse(time.RFC3339Nano, st.Submitted)
		if err != nil {
			t.Fatal(err)
		}
		days[fired.In(ny).Format("2006-01-02")]++
	}
	if len(days) != 7 {
		t.Fatalf("7 fires covered %d civil days: %v", len(days), days)
	}
	for day, n := range days {
		if n != 1 {
			t.Errorf("day %s fired %d times", day, n)
		}
	}
	if st := entry.status(); st.Fires != 7 {
		t.Fatalf("entry recorded %d fires", st.Fires)
	}
}

// Two schedules, one manager: fires interleave in time order and every
// job completes.
func TestSimulateInterleavesSchedules(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	clock := NewSimClock(t0)
	s, m := newTestScheduler(t, clock, 2, 8)
	s.Add("fast", Every(4*time.Hour), JobSpec{})
	s.Add("slow", DailyAt(12, 0, time.UTC), JobSpec{})

	jobs, err := s.Simulate(context.Background(), clock, t0.AddDate(0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	// 12 four-hourly fires + 2 daily fires over 48h.
	if len(jobs) != 14 {
		t.Fatalf("fired %d jobs, want 14", len(jobs))
	}
	if got := m.Counts()[JobDone]; got != 14 {
		t.Fatalf("done = %d, want 14", got)
	}
	var prev time.Time
	for _, job := range jobs {
		at, err := time.Parse(time.RFC3339Nano, job.Status().Submitted)
		if err != nil {
			t.Fatal(err)
		}
		if at.Before(prev) {
			t.Fatalf("fires out of order: %v after %v", at, prev)
		}
		prev = at
	}
}

// A full queue drops the fire (logged + counted) instead of wedging the
// scheduler.
func TestTickDropsFireWhenQueueFull(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	clock := NewSimClock(t0)
	block := make(chan struct{})
	m := NewManager(ManagerConfig{Workers: 1, Queue: 1, Clock: clock,
		Run: func(ctx context.Context, job *Job) error { <-block; return nil }})
	m.Start()
	defer func() {
		close(block)
		m.Shutdown(0)
	}()
	s := NewScheduler(clock, m, nil)
	s.Add("hourly", Every(time.Hour), JobSpec{})

	first := s.Tick(t0.Add(time.Hour))
	if len(first) != 1 {
		t.Fatalf("first tick fired %d", len(first))
	}
	waitState(t, first[0], JobRunning)
	if jobs := s.Tick(t0.Add(2 * time.Hour)); len(jobs) != 1 {
		t.Fatalf("second tick fired %d (queue has room for 1)", len(jobs))
	}
	// Queue now full; the next fire is dropped but the schedule advances.
	if jobs := s.Tick(t0.Add(3 * time.Hour)); len(jobs) != 0 {
		t.Fatalf("third tick fired %d, want drop", len(jobs))
	}
	if next := s.NextFire(); !next.Equal(t0.Add(4 * time.Hour)) {
		t.Fatalf("schedule wedged: next = %v", next)
	}
}

// Run ticks off the injected clock: advancing simulated time fires the
// schedule with no real sleeping.
func TestRunFiresOffInjectedClock(t *testing.T) {
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	clock := NewSimClock(t0)
	s, _ := newTestScheduler(t, clock, 1, 8)
	entry := s.Add("minutely", Every(time.Minute), JobSpec{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	deadline := time.Now().Add(10 * time.Second)
	for entry.status().Fires < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d fires", entry.status().Fires)
		}
		clock.Advance(time.Minute)
		time.Sleep(time.Millisecond)
	}
}
