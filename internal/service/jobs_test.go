package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func waitState(t *testing.T, job *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if job.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", job.ID, job.State(), want)
}

// Backpressure: with W workers and a queue of Q, submission W+Q+1
// is rejected with ErrQueueFull rather than blocking or buffering.
func TestManagerQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 2,
		Queue:   2,
		Run: func(ctx context.Context, job *Job) error {
			<-gate
			return nil
		},
	})
	m.Start()
	var jobs []*Job
	for i := 0; i < 2; i++ {
		job, err := m.Submit(JobSpec{Scale: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		waitState(t, job, JobRunning)
	}
	for i := 0; i < 2; i++ {
		job, err := m.Submit(JobSpec{Scale: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if _, err := m.Submit(JobSpec{Scale: "tiny"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("5th submit: err = %v, want ErrQueueFull", err)
	}
	close(gate)
	for _, job := range jobs {
		waitState(t, job, JobDone)
	}
	if got := m.Counts()[JobDone]; got != 4 {
		t.Fatalf("done count = %d, want 4", got)
	}
}

// The worker pool is the concurrency cap: no matter how many jobs are
// queued, at most Workers run at once.
func TestManagerCapsConcurrentJobs(t *testing.T) {
	var running, peak atomic.Int32
	m := NewManager(ManagerConfig{
		Workers: 2,
		Queue:   16,
		Run: func(ctx context.Context, job *Job) error {
			n := running.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			running.Add(-1)
			return nil
		},
	})
	m.Start()
	var jobs []*Job
	for i := 0; i < 8; i++ {
		job, err := m.Submit(JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		waitState(t, job, JobDone)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("observed %d concurrent jobs, cap is 2", p)
	}
}

func TestSubmitRejectsBadSpec(t *testing.T) {
	m := NewManager(ManagerConfig{})
	if _, err := m.Submit(JobSpec{Scale: "galactic"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if _, err := m.Submit(JobSpec{FaultProfile: "asteroid"}); err == nil {
		t.Error("unknown fault profile accepted")
	}
	if _, err := m.Submit(JobSpec{Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
}

// Graceful shutdown: the in-flight job drains to completion, the queued
// job is cancelled without running, and Submit starts refusing.
func TestShutdownDrainsInFlightAndCancelsQueued(t *testing.T) {
	clock := NewSimClock(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	release := make(chan struct{})
	m := NewManager(ManagerConfig{
		Workers: 1,
		Queue:   4,
		Clock:   clock,
		Run: func(ctx context.Context, job *Job) error {
			<-release
			return nil
		},
	})
	m.Start()
	inflight, err := m.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, inflight, JobRunning)
	queued, err := m.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		m.Shutdown(time.Hour) // simulated clock: grace never expires on its own
		close(done)
	}()
	// Draining refuses new work immediately.
	deadline := time.Now().Add(10 * time.Second)
	for !m.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(JobSpec{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not return after jobs drained")
	}
	if st := inflight.State(); st != JobDone {
		t.Fatalf("in-flight job = %s, want done", st)
	}
	if st := queued.State(); st != JobCanceled {
		t.Fatalf("queued job = %s, want canceled", st)
	}
}

// Grace expiry: a job that outlives the grace period has its context
// cancelled and finishes as canceled — the mechanism the real pipeline
// observes mid-stage.
func TestShutdownGraceExpiryCancelsContext(t *testing.T) {
	clock := NewSimClock(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
	m := NewManager(ManagerConfig{
		Workers: 1,
		Clock:   clock,
		Run: func(ctx context.Context, job *Job) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	m.Start()
	job, err := m.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, JobRunning)

	done := make(chan struct{})
	go func() {
		m.Shutdown(time.Minute)
		close(done)
	}()
	// Walk the simulated clock forward until the grace waiter (registered
	// inside Shutdown at an unknown real moment) has been passed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case <-done:
			if st := job.State(); st != JobCanceled {
				t.Fatalf("job = %s, want canceled", st)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("shutdown never cancelled the in-flight job")
		}
		clock.Advance(time.Minute)
		time.Sleep(time.Millisecond)
	}
}

// End-to-end cancellation: a real tiny campaign, cancelled mid-run by a
// zero-grace shutdown, aborts inside the analysis pipeline and reports
// canceled — the daemon-side face of Pipeline.SetContext.
func TestShutdownCancelsRealPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign skipped in -short")
	}
	m := NewManager(ManagerConfig{Workers: 1})
	m.Start()
	job, err := m.Submit(JobSpec{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, job, JobRunning)
	m.Shutdown(0)
	if st := job.State(); st != JobCanceled {
		t.Fatalf("job = %s, want canceled", st)
	}
	if job.Document() != nil {
		t.Fatal("cancelled job produced a report document")
	}
}

func TestFleetJobProducesFleetDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet campaign skipped in -short")
	}
	m := NewManager(ManagerConfig{Workers: 1})
	m.Start()
	defer m.Shutdown(time.Minute)
	job, err := m.Submit(JobSpec{FleetHomes: 3, FleetSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if st := job.State(); st != JobDone {
		t.Fatalf("job = %s (%s), want done", st, job.Err())
	}
	doc := job.Document()
	if doc == nil {
		t.Fatal("fleet job produced no document")
	}
	for _, key := range []string{"fleet", "fleet-exposure", "fleet-slds", "fleet-enc", "fleet-pii"} {
		if doc.Get(key) == nil {
			t.Fatalf("fleet document missing table %q", key)
		}
	}
	if st := job.Status(); st.Fleet != 3 {
		t.Fatalf("status fleet = %d, want 3", st.Fleet)
	}
}

func TestFleetSpecValidation(t *testing.T) {
	m := NewManager(ManagerConfig{})
	if _, err := m.Submit(JobSpec{FleetHomes: -1}); err == nil {
		t.Error("negative fleet size accepted")
	}
	if _, err := m.Submit(JobSpec{FleetHomes: 5, CaptureDir: "/tmp/x"}); err == nil {
		t.Error("fleet+ingest spec accepted")
	}
}
