package service

import (
	_ "embed"
	"net/http"
)

// The dashboard is a single self-contained HTML page — no external
// assets, no build step — that polls the JSON API the daemon already
// serves. It is embedded so the moniotrd binary stays a single file.
//
//go:embed dashboard.html
var dashboardHTML []byte

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(dashboardHTML)
}
