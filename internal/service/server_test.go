package service

import (
	"archive/tar"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/report"
)

// cannedDoc is what the hooked runner "produces" instead of a campaign.
func cannedDoc() *report.Document {
	tbl := &report.Table{
		Title:   "Devices by destination party",
		Headers: []string{"Device", "First", "Third"},
	}
	tbl.AddRow("camera-1", "3", "2")
	tbl.AddRow("tv-1", "5", "1")
	doc := &report.Document{}
	doc.Add("headline", tbl)
	return doc
}

func cannedRun(ctx context.Context, job *Job) error {
	job.SetDocument(cannedDoc())
	return nil
}

type testDaemon struct {
	mgr   *Manager
	sched *Scheduler
	srv   *Server
	http  *httptest.Server
	reg   *obs.Registry
}

func newTestDaemon(t *testing.T, run func(context.Context, *Job) error) *testDaemon {
	t.Helper()
	if run == nil {
		run = cannedRun
	}
	reg := obs.NewRegistry()
	mgr := NewManager(ManagerConfig{Workers: 1, Queue: 4, Metrics: reg, Run: run})
	mgr.Start()
	sched := NewScheduler(nil, mgr, nil)
	srv := NewServer(ServerConfig{
		Manager:   mgr,
		Scheduler: sched,
		Metrics:   reg,
		DataDir:   t.TempDir(),
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		mgr.Shutdown(0)
	})
	return &testDaemon{mgr: mgr, sched: sched, srv: srv, http: hs, reg: reg}
}

func (d *testDaemon) get(t *testing.T, path string, wantCode int, into any) {
	t.Helper()
	resp, err := http.Get(d.http.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d; body: %s", path, resp.StatusCode, wantCode, body)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func TestStatusAndHealthEndpoints(t *testing.T) {
	d := newTestDaemon(t, nil)
	d.sched.Add("nightly", DailyAt(3, 30, time.UTC), JobSpec{Scale: "tiny"})

	var st DaemonStatus
	d.get(t, "/api/status", http.StatusOK, &st)
	if len(st.Schedules) != 1 || st.Schedules[0].Name != "nightly" {
		t.Fatalf("status schedules = %+v", st.Schedules)
	}
	if st.Draining {
		t.Fatal("fresh daemon reports draining")
	}
	var health map[string]string
	d.get(t, "/healthz", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}
}

func TestSubmitJobAndFetchReport(t *testing.T) {
	d := newTestDaemon(t, nil)
	resp, err := http.Post(d.http.URL+"/api/jobs", "application/json",
		strings.NewReader(`{"scale": "tiny", "faults": "lossy-home"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d; body: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Origin != "api" {
		t.Fatalf("origin = %q", st.Origin)
	}
	job, ok := d.mgr.Get(st.ID)
	if !ok {
		t.Fatalf("job %q not registered", st.ID)
	}
	<-job.Done()

	var final JobStatus
	d.get(t, "/api/jobs/"+st.ID, http.StatusOK, &final)
	if final.State != JobDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}

	// The report endpoint serves exactly the canonical document bytes.
	resp, err = http.Get(d.http.URL + "/api/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var want bytes.Buffer
	if err := cannedDoc().RenderJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("report bytes differ from Document.RenderJSON:\n%s\nvs\n%s", got, want.Bytes())
	}

	// ?tables= filters by key.
	resp, err = http.Get(d.http.URL + "/api/jobs/" + st.ID + "/report?tables=nope")
	if err != nil {
		t.Fatal(err)
	}
	filtered, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	doc, err := report.DecodeDocument(bytes.NewReader(filtered))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 0 {
		t.Fatalf("filter kept %d entries", len(doc.Entries))
	}
}

func TestSubmitRejections(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, func(ctx context.Context, job *Job) error {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil
	})
	post := func(body string) int {
		resp, err := http.Post(d.http.URL+"/api/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"scale": "galactic"}`); code != http.StatusBadRequest {
		t.Fatalf("bad scale = %d", code)
	}
	if code := post(`{"capture_dir": "/etc"}`); code != http.StatusBadRequest {
		t.Fatalf("capture_dir = %d", code)
	}
	if code := post(`{"bogus_field": 1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", code)
	}
	// Fill the single worker, then the queue (4); the next submission
	// must get 503.
	if code := post(`{}`); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.mgr.Counts()[JobRunning] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		if code := post(`{}`); code != http.StatusAccepted {
			t.Fatalf("fill %d = %d", i, code)
		}
	}
	if code := post(`{}`); code != http.StatusServiceUnavailable {
		t.Fatalf("full queue = %d, want 503", code)
	}
}

func TestJobNotFoundAndReportNotReady(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	d := newTestDaemon(t, func(ctx context.Context, job *Job) error {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil
	})
	d.get(t, "/api/jobs/job-9999", http.StatusNotFound, nil)
	d.get(t, "/api/jobs/job-9999/report", http.StatusNotFound, nil)

	job, err := d.mgr.Submit(JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	d.get(t, "/api/jobs/"+job.ID+"/report", http.StatusConflict, nil)
}

func tarArchive(t *testing.T, files map[string][]byte) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for name, data := range files {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)), Typeflag: tar.TypeReg,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestUploadQueuesIngestJob(t *testing.T) {
	d := newTestDaemon(t, nil)
	arch := tarArchive(t, map[string][]byte{
		"./camera-1/2026-03-01_00.00.00.pcap":   []byte("not a real pcap"),
		"./camera-1/2026-03-01_00.00.00.labels": []byte("labels"),
	})
	resp, err := http.Post(d.http.URL+"/api/upload?stream=1&strict=1&window=64", "application/x-tar", arch)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload = %d; body: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Origin != "upload" || !st.Ingesting {
		t.Fatalf("status = %+v", st)
	}
	job, _ := d.mgr.Get(st.ID)
	<-job.Done()
	if spec := job.Spec; !spec.Stream || !spec.Strict || spec.Window != 64 || !spec.RemoveDir {
		t.Fatalf("spec = %+v", spec)
	}
	if d.reg.Counter("uploads_total").Value() != 1 {
		t.Fatal("uploads_total not incremented")
	}
}

func TestUploadRejectsUselessArchive(t *testing.T) {
	d := newTestDaemon(t, nil)
	arch := tarArchive(t, map[string][]byte{"README.txt": []byte("nothing here")})
	resp, err := http.Post(d.http.URL+"/api/upload", "application/x-tar", arch)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty upload = %d, want 400", resp.StatusCode)
	}
}

func TestMetricsAndDashboard(t *testing.T) {
	d := newTestDaemon(t, nil)
	var snap map[string]any
	d.get(t, "/metrics", http.StatusOK, &snap)

	resp, err := http.Get(d.http.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(page, []byte("moniotrd")) {
		t.Fatalf("dashboard = %d, %d bytes", resp.StatusCode, len(page))
	}
	// Request instrumentation fired.
	if d.reg.Counter("http_requests_total").Value() < 2 {
		t.Fatal("http_requests_total not incremented")
	}
}

func TestSubmitWhileDrainingReturns503(t *testing.T) {
	d := newTestDaemon(t, nil)
	d.mgr.Shutdown(0)
	resp, err := http.Post(d.http.URL+"/api/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	var st DaemonStatus
	d.get(t, "/api/status", http.StatusOK, &st)
	if !st.Draining {
		t.Fatal("status does not report draining")
	}
}
