package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/neu-sns/intl-iot-go/internal/obs"
)

// newCappedDaemon is newTestDaemon with explicit upload caps.
func newCappedDaemon(t *testing.T, maxBytes int64, maxFiles int) *testDaemon {
	t.Helper()
	reg := obs.NewRegistry()
	mgr := NewManager(ManagerConfig{Workers: 1, Queue: 4, Metrics: reg, Run: cannedRun})
	mgr.Start()
	srv := NewServer(ServerConfig{
		Manager:        mgr,
		Metrics:        reg,
		DataDir:        t.TempDir(),
		MaxUploadBytes: maxBytes,
		MaxUploadFiles: maxFiles,
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		mgr.Shutdown(0)
	})
	return &testDaemon{mgr: mgr, srv: srv, http: hs, reg: reg}
}

// postUpload posts the archive and returns status code and decoded JSON
// error (if any).
func postUpload(t *testing.T, d *testDaemon, arch io.Reader) (int, string) {
	t.Helper()
	resp, err := http.Post(d.http.URL+"/api/upload", "application/x-tar", arch)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var apiErr struct {
		Error string `json:"error"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &apiErr); err != nil {
			t.Fatalf("response not JSON: %v; body: %s", err, body)
		}
	}
	return resp.StatusCode, apiErr.Error
}

func TestUploadRejectsOversizeArchive(t *testing.T) {
	d := newCappedDaemon(t, 64, 0)
	arch := tarArchive(t, map[string][]byte{
		"cam/2026-03-01_00.00.00.pcap": bytes.Repeat([]byte("x"), 200),
	})
	code, msg := postUpload(t, d, arch)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize upload = %d, want 413 (error: %q)", code, msg)
	}
	if msg == "" {
		t.Fatal("413 response carries no JSON error message")
	}
}

func TestUploadRejectsTooManyFiles(t *testing.T) {
	d := newCappedDaemon(t, 0, 2)
	arch := tarArchive(t, map[string][]byte{
		"cam/a.pcap": []byte("a"),
		"cam/b.pcap": []byte("b"),
		"cam/c.pcap": []byte("c"),
	})
	code, msg := postUpload(t, d, arch)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("too-many-files upload = %d, want 413 (error: %q)", code, msg)
	}
	if msg == "" {
		t.Fatal("413 response carries no JSON error message")
	}
}

func TestUploadWithinCapsAccepted(t *testing.T) {
	d := newCappedDaemon(t, 1<<20, 10)
	arch := tarArchive(t, map[string][]byte{
		"cam/2026-03-01_00.00.00.pcap":   []byte("not a real pcap"),
		"cam/2026-03-01_00.00.00.labels": []byte("labels"),
	})
	code, msg := postUpload(t, d, arch)
	if code != http.StatusAccepted {
		t.Fatalf("capped-but-small upload = %d, want 202 (error: %q)", code, msg)
	}
}
