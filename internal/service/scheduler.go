package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Entry is one named schedule driving a job spec.
type Entry struct {
	Name     string
	Schedule Schedule
	Spec     JobSpec

	mu    sync.Mutex
	next  time.Time
	fires int
	last  time.Time
}

// EntryStatus is the JSON-facing snapshot of a schedule entry.
type EntryStatus struct {
	Name     string `json:"name"`
	Schedule string `json:"schedule"`
	Next     string `json:"next"`
	Fires    int    `json:"fires"`
	Last     string `json:"last,omitempty"`
}

func (e *Entry) status() EntryStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EntryStatus{
		Name:     e.Name,
		Schedule: e.Schedule.String(),
		Next:     rfc3339(e.next),
		Fires:    e.fires,
		Last:     rfc3339(e.last),
	}
}

// Scheduler fires schedule entries into a job manager. Its core is the
// pure Tick(now) step — fire everything due, compute the next horizon —
// so tests and moniotrd -simulate drive it from a SimClock without
// sleeping, while Run wraps the same step in a clock.After wait loop
// for the real daemon.
type Scheduler struct {
	clock Clock
	mgr   *Manager
	logf  func(string, ...any)

	mu      sync.Mutex
	entries []*Entry
}

// NewScheduler builds a scheduler firing into mgr. logf may be nil.
func NewScheduler(clock Clock, mgr *Manager, logf func(string, ...any)) *Scheduler {
	if clock == nil {
		clock = RealClock()
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Scheduler{clock: clock, mgr: mgr, logf: logf}
}

// Add registers a schedule entry; its first fire is the schedule's
// Next after the current clock time.
func (s *Scheduler) Add(name string, sched Schedule, spec JobSpec) *Entry {
	e := &Entry{Name: name, Schedule: sched, Spec: spec}
	e.next = sched.Next(s.clock.Now())
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
	s.logf("schedule %q (%s): first fire %s", name, sched, e.next.Format(time.RFC3339))
	return e
}

// Entries snapshots every schedule entry in registration order.
func (s *Scheduler) Entries() []EntryStatus {
	s.mu.Lock()
	entries := append([]*Entry(nil), s.entries...)
	s.mu.Unlock()
	out := make([]EntryStatus, len(entries))
	for i, e := range entries {
		out[i] = e.status()
	}
	return out
}

// Tick fires every entry due at or before now and advances its next
// fire time past now. Each fire submits one job with Origin
// "schedule:<name>"; a full queue drops that fire (logged and counted)
// rather than stacking jobs the manager can't absorb. Tick returns the
// jobs it submitted. It is pure with respect to time: no clock reads,
// no sleeping.
func (s *Scheduler) Tick(now time.Time) []*Job {
	s.mu.Lock()
	entries := append([]*Entry(nil), s.entries...)
	s.mu.Unlock()
	var jobs []*Job
	for _, e := range entries {
		e.mu.Lock()
		due := !e.next.IsZero() && !e.next.After(now)
		at := e.next
		if due {
			e.next = e.Schedule.Next(now)
			e.fires++
			e.last = at
		}
		e.mu.Unlock()
		if !due {
			continue
		}
		spec := e.Spec
		spec.Origin = "schedule:" + e.Name
		job, err := s.mgr.Submit(spec)
		if err != nil {
			s.mgr.metrics.Counter("schedule_fires_dropped_total").Inc()
			s.logf("schedule %q: fire at %s dropped: %v", e.Name, at.Format(time.RFC3339), err)
			continue
		}
		s.logf("schedule %q fired at %s -> %s", e.Name, at.Format(time.RFC3339), job.ID)
		jobs = append(jobs, job)
	}
	return jobs
}

// NextFire returns the earliest pending fire time, or zero if no
// entries are registered.
func (s *Scheduler) NextFire() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	var min time.Time
	for _, e := range s.entries {
		e.mu.Lock()
		next := e.next
		e.mu.Unlock()
		if next.IsZero() {
			continue
		}
		if min.IsZero() || next.Before(min) {
			min = next
		}
	}
	return min
}

// Run ticks the scheduler until ctx is done, sleeping via the injected
// clock between fires. With no entries it re-checks every minute (a new
// entry added through the API shortens the next wait naturally).
func (s *Scheduler) Run(ctx context.Context) {
	for {
		now := s.clock.Now()
		s.Tick(now)
		next := s.NextFire()
		wait := time.Minute
		if !next.IsZero() {
			if d := next.Sub(s.clock.Now()); d < wait {
				wait = d
			}
		}
		if wait < 0 {
			wait = 0
		}
		select {
		case <-ctx.Done():
			return
		case <-s.clock.After(wait):
		}
	}
}

// Simulate fast-forwards a SimClock through every fire up to until,
// waiting for each fired job to finish before advancing further — the
// engine behind moniotrd -simulate, and a deterministic way to exercise
// a long schedule horizon in tests. It returns the jobs fired, in
// order.
func (s *Scheduler) Simulate(ctx context.Context, clock *SimClock, until time.Time) ([]*Job, error) {
	var fired []*Job
	for {
		next := s.NextFire()
		if next.IsZero() || next.After(until) {
			clock.AdvanceTo(until)
			return fired, nil
		}
		clock.AdvanceTo(next)
		jobs := s.Tick(clock.Now())
		for _, job := range jobs {
			select {
			case <-job.Done():
			case <-ctx.Done():
				return fired, ctx.Err()
			}
			fired = append(fired, job)
			if job.State() == JobFailed {
				return fired, fmt.Errorf("service: simulated job %s failed: %s", job.ID, job.Err())
			}
		}
	}
}
