package service

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schedule decides when a recurring campaign fires. Implementations are
// pure functions of time — no goroutines, no clocks — which is what
// makes the scheduler simulation-testable: tests (and moniotrd
// -simulate) walk Next from a simulated instant without sleeping.
type Schedule interface {
	// Next returns the first fire time strictly after the given instant.
	Next(after time.Time) time.Time
	// String renders the schedule in the syntax ParseSchedule accepts.
	String() string
}

// every fires at a fixed interval, anchored to the previous fire.
type every struct{ d time.Duration }

// Every returns an interval schedule; d must be positive.
func Every(d time.Duration) Schedule { return every{d} }

func (e every) Next(after time.Time) time.Time { return after.Add(e.d) }
func (e every) String() string                 { return "every " + e.d.String() }

// daily fires once per calendar day at a wall-clock time in a location.
// Day arithmetic goes through time.Date in that location, so the
// schedule tracks civil time across DST transitions: a nonexistent
// fire time (spring forward) normalizes into the following hour, an
// ambiguous one (fall back) resolves to a single instant — exactly one
// fire per calendar day either way, even when the day is 23 or 25
// hours long.
type daily struct {
	hh, mm int
	loc    *time.Location
}

// DailyAt returns a schedule firing at hh:mm each day in loc.
func DailyAt(hh, mm int, loc *time.Location) Schedule {
	return daily{hh: hh, mm: mm, loc: loc}
}

func (d daily) Next(after time.Time) time.Time {
	t := after.In(d.loc)
	cand := time.Date(t.Year(), t.Month(), t.Day(), d.hh, d.mm, 0, 0, d.loc)
	for !cand.After(after) {
		cand = time.Date(cand.Year(), cand.Month(), cand.Day()+1, d.hh, d.mm, 0, 0, d.loc)
	}
	return cand
}

func (d daily) String() string {
	return fmt.Sprintf("daily %02d:%02d %s", d.hh, d.mm, d.loc)
}

// calendar fires at a wall-clock time on selected weekdays.
type calendar struct {
	days   map[time.Weekday]bool
	hh, mm int
	loc    *time.Location
}

// OnDays returns a schedule firing at hh:mm in loc on the given
// weekdays; days must be non-empty.
func OnDays(days []time.Weekday, hh, mm int, loc *time.Location) Schedule {
	set := make(map[time.Weekday]bool, len(days))
	for _, d := range days {
		set[d] = true
	}
	return calendar{days: set, hh: hh, mm: mm, loc: loc}
}

func (c calendar) Next(after time.Time) time.Time {
	cand := daily{hh: c.hh, mm: c.mm, loc: c.loc}.Next(after)
	for i := 0; i < 8 && !c.days[cand.In(c.loc).Weekday()]; i++ {
		t := cand.In(c.loc)
		cand = time.Date(t.Year(), t.Month(), t.Day()+1, c.hh, c.mm, 0, 0, c.loc)
	}
	return cand
}

func (c calendar) String() string {
	names := make([]string, 0, len(c.days))
	for d := range c.days {
		names = append(names, strings.ToLower(d.String()[:3]))
	}
	sort.Slice(names, func(i, j int) bool {
		return weekdayNames[names[i]] < weekdayNames[names[j]]
	})
	return fmt.Sprintf("on %s %02d:%02d %s", strings.Join(names, ","), c.hh, c.mm, c.loc)
}

var weekdayNames = map[string]time.Weekday{
	"sun": time.Sunday, "mon": time.Monday, "tue": time.Tuesday,
	"wed": time.Wednesday, "thu": time.Thursday, "fri": time.Friday,
	"sat": time.Saturday,
}

// ParseSchedule parses the moniotrd schedule syntax in a location:
//
//	every DURATION        e.g. "every 6h", "every 90m" (minimum 1s)
//	daily HH:MM           e.g. "daily 03:30"
//	on DAYS HH:MM         e.g. "on mon,thu 03:30" (3-letter weekday names)
//
// Wall-clock times are interpreted in loc (moniotrd's -tz flag).
func ParseSchedule(spec string, loc *time.Location) (Schedule, error) {
	if loc == nil {
		loc = time.UTC
	}
	f := strings.Fields(spec)
	fail := func(format string, args ...any) (Schedule, error) {
		return nil, fmt.Errorf("service: schedule %q: %s", spec, fmt.Sprintf(format, args...))
	}
	if len(f) == 0 {
		return fail("empty")
	}
	switch f[0] {
	case "every":
		if len(f) != 2 {
			return fail("want \"every DURATION\"")
		}
		d, err := time.ParseDuration(f[1])
		if err != nil {
			return fail("%v", err)
		}
		if d < time.Second {
			return fail("interval %v below 1s", d)
		}
		return Every(d), nil
	case "daily":
		if len(f) != 2 {
			return fail("want \"daily HH:MM\"")
		}
		hh, mm, err := parseHHMM(f[1])
		if err != nil {
			return fail("%v", err)
		}
		return DailyAt(hh, mm, loc), nil
	case "on":
		if len(f) != 3 {
			return fail("want \"on DAYS HH:MM\"")
		}
		var days []time.Weekday
		for _, name := range strings.Split(f[1], ",") {
			d, ok := weekdayNames[strings.ToLower(name)]
			if !ok {
				return fail("unknown weekday %q", name)
			}
			days = append(days, d)
		}
		hh, mm, err := parseHHMM(f[2])
		if err != nil {
			return fail("%v", err)
		}
		return OnDays(days, hh, mm, loc), nil
	}
	return fail("unknown form %q (want every/daily/on)", f[0])
}

func parseHHMM(s string) (hh, mm int, err error) {
	h, m, ok := strings.Cut(s, ":")
	if ok {
		hh, err = strconv.Atoi(h)
		if err == nil {
			mm, err = strconv.Atoi(m)
		}
	}
	if !ok || err != nil || hh < 0 || hh > 23 || mm < 0 || mm > 59 {
		return 0, 0, fmt.Errorf("bad time %q (want HH:MM)", s)
	}
	return hh, mm, nil
}
