// Package httpmsg implements a tolerant HTTP/1.x codec for raw TCP payload
// streams. Unlike net/http it parses partial captures (a request whose
// body was truncated by the snap length still yields its method, target
// and Host header), which is what the destination and PII analyses need.
package httpmsg
