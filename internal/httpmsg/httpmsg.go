package httpmsg

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Request is a parsed HTTP request head plus (possibly partial) body.
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers map[string]string // canonical-cased keys
	Body    []byte
}

// Response is a parsed HTTP response head plus (possibly partial) body.
type Response struct {
	Proto      string
	StatusCode int
	Status     string
	Headers    map[string]string
	Body       []byte
}

// Host returns the Host header of the request.
func (r *Request) Host() string { return r.Headers["Host"] }

// Marshal renders the request to wire bytes. A Content-Length header is
// added when a body is present and none was set.
func (r *Request) Marshal() []byte {
	var b bytes.Buffer
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	target := r.Target
	if target == "" {
		target = "/"
	}
	fmt.Fprintf(&b, "%s %s %s\r\n", r.Method, target, proto)
	writeHeaders(&b, r.Headers, len(r.Body))
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// Marshal renders the response to wire bytes.
func (r *Response) Marshal() []byte {
	var b bytes.Buffer
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	status := r.Status
	if status == "" {
		status = defaultStatus(r.StatusCode)
	}
	fmt.Fprintf(&b, "%s %d %s\r\n", proto, r.StatusCode, status)
	writeHeaders(&b, r.Headers, len(r.Body))
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

func writeHeaders(b *bytes.Buffer, headers map[string]string, bodyLen int) {
	keys := make([]string, 0, len(headers))
	hasCL := false
	for k := range headers {
		if strings.EqualFold(k, "Content-Length") {
			hasCL = true
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, headers[k])
	}
	if !hasCL && bodyLen > 0 {
		fmt.Fprintf(b, "Content-Length: %d\r\n", bodyLen)
	}
}

func defaultStatus(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 401:
		return "Unauthorized"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// LooksLikeHTTPRequest reports whether b plausibly begins an HTTP request.
func LooksLikeHTTPRequest(b []byte) bool {
	for _, m := range [...]string{"GET ", "POST ", "PUT ", "HEAD ", "DELETE ", "OPTIONS ", "PATCH ", "CONNECT "} {
		if len(b) >= len(m) && string(b[:len(m)]) == m {
			return true
		}
	}
	return false
}

// LooksLikeHTTPResponse reports whether b plausibly begins an HTTP response.
func LooksLikeHTTPResponse(b []byte) bool {
	return bytes.HasPrefix(b, []byte("HTTP/1.")) || bytes.HasPrefix(b, []byte("HTTP/2"))
}

// ParseRequest parses a request from the head of a client→server stream.
// Truncated bodies are returned as-is; a missing final CRLF only loses the
// body, never the head.
func ParseRequest(b []byte) (*Request, error) {
	if !LooksLikeHTTPRequest(b) {
		return nil, fmt.Errorf("httpmsg: not an HTTP request")
	}
	head, body := splitHead(b)
	lines := strings.Split(head, "\r\n")
	first := strings.SplitN(lines[0], " ", 3)
	if len(first) < 2 {
		return nil, fmt.Errorf("httpmsg: malformed request line %q", lines[0])
	}
	req := &Request{Method: first[0], Target: first[1], Headers: parseHeaders(lines[1:]), Body: body}
	if len(first) == 3 {
		req.Proto = first[2]
	}
	if cl, ok := req.Headers["Content-Length"]; ok {
		if n, err := strconv.Atoi(strings.TrimSpace(cl)); err == nil && n >= 0 && n < len(req.Body) {
			req.Body = req.Body[:n]
		}
	}
	return req, nil
}

// ParseResponse parses a response from the head of a server→client stream.
func ParseResponse(b []byte) (*Response, error) {
	if !LooksLikeHTTPResponse(b) {
		return nil, fmt.Errorf("httpmsg: not an HTTP response")
	}
	head, body := splitHead(b)
	lines := strings.Split(head, "\r\n")
	first := strings.SplitN(lines[0], " ", 3)
	if len(first) < 2 {
		return nil, fmt.Errorf("httpmsg: malformed status line %q", lines[0])
	}
	code, err := strconv.Atoi(first[1])
	if err != nil {
		return nil, fmt.Errorf("httpmsg: bad status code %q", first[1])
	}
	resp := &Response{Proto: first[0], StatusCode: code, Headers: parseHeaders(lines[1:]), Body: body}
	if len(first) == 3 {
		resp.Status = first[2]
	}
	return resp, nil
}

// splitHead separates the header block from the body; if no blank line is
// present the whole buffer is the head (truncated capture).
func splitHead(b []byte) (string, []byte) {
	if i := bytes.Index(b, []byte("\r\n\r\n")); i >= 0 {
		return string(b[:i]), b[i+4:]
	}
	return string(b), nil
}

func parseHeaders(lines []string) map[string]string {
	h := make(map[string]string, len(lines))
	for _, line := range lines {
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		key := canonicalKey(strings.TrimSpace(line[:i]))
		h[key] = strings.TrimSpace(line[i+1:])
	}
	return h
}

// canonicalKey normalizes header names to Canonical-Cased form.
func canonicalKey(s string) string {
	b := []byte(s)
	upper := true
	for i, c := range b {
		if upper && 'a' <= c && c <= 'z' {
			b[i] = c - 32
		} else if !upper && 'A' <= c && c <= 'Z' {
			b[i] = c + 32
		}
		upper = c == '-'
	}
	return string(b)
}

// ExtractHost scans a client→server stream for an HTTP request and returns
// its Host header value (without port), if present.
func ExtractHost(stream []byte) (string, bool) {
	req, err := ParseRequest(stream)
	if err != nil {
		return "", false
	}
	host := req.Host()
	if host == "" {
		return "", false
	}
	if i := strings.LastIndexByte(host, ':'); i > 0 && !strings.Contains(host, "]") {
		host = host[:i]
	}
	return host, true
}
