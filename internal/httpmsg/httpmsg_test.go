package httpmsg

import (
	"bytes"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Target: "/v1/telemetry",
		Headers: map[string]string{
			"Host":         "metrics.samsungcloud.com",
			"Content-Type": "application/json",
		},
		Body: []byte(`{"mac":"74:da:38:1b:20:01"}`),
	}
	got, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	if got.Method != "POST" || got.Target != "/v1/telemetry" || got.Proto != "HTTP/1.1" {
		t.Errorf("request line: %+v", got)
	}
	if got.Host() != "metrics.samsungcloud.com" {
		t.Errorf("Host = %q", got.Host())
	}
	if !bytes.Equal(got.Body, req.Body) {
		t.Errorf("body = %q", got.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		StatusCode: 200,
		Headers:    map[string]string{"Content-Type": "text/plain"},
		Body:       []byte("ok"),
	}
	got, err := ParseResponse(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || got.Status != "OK" {
		t.Errorf("status: %d %q", got.StatusCode, got.Status)
	}
	if string(got.Body) != "ok" {
		t.Errorf("body: %q", got.Body)
	}
}

func TestTruncatedRequestStillYieldsHead(t *testing.T) {
	full := (&Request{
		Method:  "GET",
		Target:  "/firmware/v2.bin",
		Headers: map[string]string{"Host": "fw.wansview.com"},
	}).Marshal()
	// Cut mid-headers.
	cut := full[:len(full)-6]
	got, err := ParseRequest(cut)
	if err != nil {
		t.Fatalf("ParseRequest(truncated): %v", err)
	}
	if got.Method != "GET" || got.Target != "/firmware/v2.bin" {
		t.Errorf("head: %+v", got)
	}
}

func TestContentLengthTrimsBody(t *testing.T) {
	raw := "POST /x HTTP/1.1\r\nHost: a.com\r\nContent-Length: 3\r\n\r\nabcEXTRA"
	got, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "abc" {
		t.Errorf("body = %q", got.Body)
	}
}

func TestExtractHost(t *testing.T) {
	req := (&Request{Method: "GET", Target: "/", Headers: map[string]string{"Host": "api.tuyaus.com:8080"}}).Marshal()
	host, ok := ExtractHost(req)
	if !ok || host != "api.tuyaus.com" {
		t.Fatalf("ExtractHost = %q, %v", host, ok)
	}
	if _, ok := ExtractHost([]byte{0x16, 0x03, 0x01}); ok {
		t.Error("TLS bytes misdetected as HTTP")
	}
	noHost := (&Request{Method: "GET", Target: "/"}).Marshal()
	if _, ok := ExtractHost(noHost); ok {
		t.Error("request without Host should not extract")
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nhOsT: x.com\r\nx-device-id: abc\r\n\r\n"
	got, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Headers["Host"] != "x.com" {
		t.Errorf("Host header: %v", got.Headers)
	}
	if got.Headers["X-Device-Id"] != "abc" {
		t.Errorf("custom header: %v", got.Headers)
	}
}

func TestLooksLike(t *testing.T) {
	if !LooksLikeHTTPRequest([]byte("GET / HTTP/1.1\r\n")) {
		t.Error("GET not detected")
	}
	if LooksLikeHTTPRequest([]byte("GETX")) {
		t.Error("GETX misdetected")
	}
	if !LooksLikeHTTPResponse([]byte("HTTP/1.1 200 OK\r\n")) {
		t.Error("response not detected")
	}
	if LooksLikeHTTPResponse([]byte("NOPE")) {
		t.Error("NOPE misdetected")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseRequest([]byte("\x16\x03\x01")); err == nil {
		t.Error("TLS should not parse as request")
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 abc OK\r\n\r\n")); err == nil {
		t.Error("bad status code should error")
	}
}

func TestMarshalAddsContentLength(t *testing.T) {
	req := &Request{Method: "POST", Target: "/", Body: []byte("12345")}
	wire := string(req.Marshal())
	if !strings.Contains(wire, "Content-Length: 5\r\n") {
		t.Errorf("missing Content-Length: %q", wire)
	}
}

func TestResponseDefaultStatusTexts(t *testing.T) {
	for _, code := range []int{200, 204, 301, 302, 400, 401, 403, 404, 500, 599} {
		r := &Response{StatusCode: code}
		if _, err := ParseResponse(r.Marshal()); err != nil {
			t.Errorf("code %d: %v", code, err)
		}
	}
}
