// Package intliot is a Go reproduction of "Information Exposure From
// Consumer IoT Devices: A Multidimensional, Network-Informed Measurement
// Approach" (Ren et al., ACM IMC 2019).
//
// The package simulates the paper's full measurement stack — the 81
// consumer IoT devices of Table 1, the US/UK Mon(IoT)r testbeds with NAT,
// per-MAC capture and an inter-lab VPN, and the server-side Internet they
// talk to — then runs the paper's analyses over the captured traffic:
//
//   - destination analysis (§4): party classification and geolocation of
//     every traffic destination (Tables 2–4, Figure 2);
//   - encryption analysis (§5): protocol + entropy classification of
//     every flow (Tables 5–8);
//   - content analysis (§6): plaintext PII detection and random-forest
//     activity inference (Tables 9–10);
//   - unexpected behaviour (§7): traffic-unit segmentation and
//     high-accuracy model replay over idle and user-study captures
//     (Table 11).
//
// Quick start:
//
//	study, err := intliot.NewStudy(intliot.QuickConfig())
//	if err != nil { ... }
//	study.Run()
//	study.Table2().Render(os.Stdout)
package intliot

import (
	"context"
	"fmt"
	"io"

	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/experiments"
	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/report"
	"github.com/neu-sns/intl-iot-go/internal/reshape"
)

// Config sizes a measurement campaign; see PaperConfig and QuickConfig.
type Config = experiments.Config

// PaperConfig reproduces the paper's §3.3 experiment counts: 30 automated
// repetitions, 3 manual, 3 power, the Table 11 idle hours, VPN repetition
// of every controlled experiment, and 180 user-study days.
func PaperConfig() Config { return experiments.PaperConfig() }

// QuickConfig is a scaled-down campaign that preserves every analysis
// shape while running in seconds; examples and tests use it.
func QuickConfig() Config { return experiments.QuickConfig() }

// ScaleConfig maps a named campaign scale to its Config. The names are
// the ones cmd/moniotr and cmd/moniotrd accept: "tiny" (single
// repetitions, one idle hour per leg — the smoke-test scale), "quick"
// (QuickConfig), "bench" (a mid-sized campaign for benchmarking) and
// "paper" (the full §3.3 experiment counts).
func ScaleConfig(scale string) (Config, error) {
	switch scale {
	case "tiny":
		cfg := QuickConfig()
		cfg.AutomatedReps = 1
		cfg.ManualReps = 1
		cfg.PowerReps = 1
		cfg.IdleHours = map[string]float64{"US": 1, "GB": 1, "US->GB": 1, "GB->US": 1}
		cfg.UncontrolledDays = 1
		return cfg, nil
	case "quick":
		return QuickConfig(), nil
	case "bench":
		cfg := QuickConfig()
		cfg.AutomatedReps = 12
		cfg.ManualReps = 3
		cfg.PowerReps = 3
		cfg.IdleHours = map[string]float64{"US": 6, "GB": 6, "US->GB": 4, "GB->US": 4}
		cfg.UncontrolledDays = 4
		return cfg, nil
	case "paper":
		return PaperConfig(), nil
	}
	return Config{}, fmt.Errorf("intliot: unknown scale %q (have tiny, quick, bench, paper)", scale)
}

// Table is a rendered result table; see its Render and RenderCSV methods.
type Table = report.Table

// InferenceResult is the per-device activity-inference outcome (§6.3).
type InferenceResult = analysis.InferenceResult

// PIIFinding is one plaintext PII exposure (§6.2).
type PIIFinding = analysis.PIIFinding

// Study is one full measurement campaign plus its analyses.
type Study struct {
	pipeline *analysis.Pipeline
	inferCfg analysis.InferConfig
	ran      bool
}

// NewStudy builds the two labs over a fresh simulated Internet. When
// cfg names a traffic-reshaping defense stack (Reshape), the synthesis
// runner is wrapped so every analysis measures the defended wire view.
func NewStudy(cfg Config) (*Study, error) {
	r, err := experiments.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := NewReshapeEngine(cfg)
	if err != nil {
		return nil, err
	}
	return NewStudyFromSource(reshape.Wrap(r, eng)), nil
}

// NewReshapeEngine builds the traffic-reshaping defense engine a Config
// describes: cfg.Reshape is parsed as a transform stack, a zero
// ReshapeSeed falls back to the campaign Seed, and an empty stack yields
// a nil (disabled) engine — valid everywhere, reshaping nothing.
// cmd/moniotr uses this to defend ingested capture directories with the
// same configuration grammar as synthesized campaigns.
func NewReshapeEngine(cfg Config) (*reshape.Engine, error) {
	stack, err := reshape.ParseStack(cfg.Reshape)
	if err != nil {
		return nil, err
	}
	seed := cfg.ReshapeSeed
	if seed == 0 {
		seed = cfg.Seed
	}
	return reshape.New(reshape.Config{Stack: stack, Seed: seed, Budget: cfg.ReshapeBudget})
}

// Source yields labelled experiments to the analysis pipeline. The
// synthesis runner is the default implementation; internal/ingest
// provides one that replays on-disk Mon(IoT)r capture directories.
type Source = analysis.Source

// NewStudyFromSource runs the analyses over an arbitrary experiment
// source, such as an ingested capture directory. Studies built this way
// support everything except RunUncontrolled, which needs the in-process
// user-study simulation.
func NewStudyFromSource(src Source) *Study {
	return &Study{
		pipeline: analysis.NewPipeline(src),
		inferCfg: analysis.DefaultInferConfig(),
	}
}

// SetInferenceConfig overrides the §6.3 cross-validation parameters;
// call before Run.
func (s *Study) SetInferenceConfig(cfg analysis.InferConfig) { s.inferCfg = cfg }

// SetAnalysisWorkers bounds the analysis-side parallelism: the sharded
// collector stage and model training/evaluation. 0 (the default) means
// one worker per core, 1 forces the historical serial pipeline. Every
// report table and detection is byte-identical for any value; call
// before Run.
func (s *Study) SetAnalysisWorkers(n int) { s.pipeline.Workers = n }

// SetContext attaches a cancellation context to the analysis pipeline.
// Once cancelled, the running campaign stops visiting experiments and
// no further stage starts; Run returns promptly with partial results.
// Check Aborted before using them. Call before Run; moniotrd uses this
// for graceful shutdown.
func (s *Study) SetContext(ctx context.Context) { s.pipeline.SetContext(ctx) }

// Aborted reports whether the last Run observed a cancelled context.
func (s *Study) Aborted() bool { return s.pipeline.Aborted() }

// Metrics is the observability registry; see internal/obs.
type Metrics = obs.Registry

// NewMetrics returns an empty observability registry for SetObs.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// SetObs attaches a metrics registry to the whole stack — pipeline,
// runner, both labs and the simulated Internet. Run then records stage
// wall times, per-collector visit counts and times, synthesis throughput
// and volume. Call before Run; a nil registry (the default) keeps every
// instrumentation site a no-op, and enabling metrics changes no analysis
// output.
func (s *Study) SetObs(reg *Metrics) { s.pipeline.SetObs(reg) }

// Run executes the controlled and idle campaigns and every analysis.
func (s *Study) Run() {
	s.pipeline.Run(s.inferCfg)
	s.ran = true
}

// RunUncontrolled executes the §7.3 user-study analysis; Run must have
// completed first, and the study must be runner-backed (capture-replay
// sources carry no uncontrolled campaign).
func (s *Study) RunUncontrolled() error {
	if !s.ran {
		return fmt.Errorf("intliot: RunUncontrolled requires Run first")
	}
	if s.pipeline.Runner() == nil {
		return fmt.Errorf("intliot: RunUncontrolled requires a synthesis runner source")
	}
	s.pipeline.RunUncontrolled()
	return nil
}

// Summary writes campaign statistics.
func (s *Study) Summary(w io.Writer) {
	fmt.Fprintf(w, "controlled: %s\n", s.pipeline.Stats)
	fmt.Fprintf(w, "idle:       %s\n", s.pipeline.IdleStats)
}

// Pipeline exposes the underlying collectors for advanced use.
func (s *Study) Pipeline() *analysis.Pipeline { return s.pipeline }

// Table1 renders the device inventory.
func (s *Study) Table1() *Table { return report.Table1() }

// Table2 renders non-first parties by experiment type.
func (s *Study) Table2() *Table { return report.Table2(s.pipeline.Dest) }

// Table3 renders non-first parties by device category.
func (s *Study) Table3() *Table { return report.Table3(s.pipeline.Dest) }

// Table4 renders the ten most-contacted organisations.
func (s *Study) Table4() *Table { return report.Table4(s.pipeline.Dest, 10) }

// Figure2 renders the traffic-volume band data behind Figure 2.
func (s *Study) Figure2() *Table { return report.Figure2(s.pipeline.Dest, 7) }

// Table5 renders encryption quartile counts.
func (s *Study) Table5() *Table { return report.Table5(s.pipeline.Enc) }

// Table6 renders encryption class shares by category.
func (s *Study) Table6() *Table { return report.Table6(s.pipeline.Enc) }

// Table7 renders per-device unencrypted percentages; names nil = all.
func (s *Study) Table7(names []string) *Table { return report.Table7(s.pipeline.Enc, names) }

// Table8 renders encryption class shares by experiment type.
func (s *Study) Table8() *Table { return report.Table8(s.pipeline.Enc) }

// EncMetricsReport renders the entropy metric family means (Shannon,
// Rényi α∈{0.5,2}, Tsallis q=2) per encryption class and column.
func (s *Study) EncMetricsReport() *Table { return report.EncMetrics(s.pipeline.Enc) }

// Table9 renders inferrable devices by category.
func (s *Study) Table9() *Table { return report.Table9(s.pipeline.Inference) }

// Table10 renders inferrable activities by group.
func (s *Study) Table10() *Table { return report.Table10(s.pipeline.Inference) }

// Table11 renders idle-detected activity instances (rows with at least
// minInstances detections in some column; the paper uses 3).
func (s *Study) Table11(minInstances int) *Table {
	return report.Table11(s.pipeline.IdleHits, minInstances)
}

// Headline renders the §1/§9 summary statistics next to the paper's.
func (s *Study) Headline() *Table { return report.Headline(s.pipeline.Dest) }

// Document is an ordered, keyed collection of tables; see
// internal/report. Its RenderJSON output is canonical, which is what
// lets the moniotrd API serve reports byte-identical to the CLI's.
type Document = report.Document

// ReportDocument builds the canonical report: every table of the
// evaluation in the CLI's order, keyed by the CLI's table names
// ("headline", "1".."11", "fig2", "enc-metrics", "pii", and — when
// RunUncontrolled has completed — "unexpected"). cmd/moniotr -json and
// the moniotrd report
// API both serve exactly this document, so the two render byte-identical
// JSON for the same campaign.
func (s *Study) ReportDocument() *Document {
	d := &Document{}
	d.Add("headline", s.Headline())
	d.Add("1", s.Table1())
	d.Add("2", s.Table2())
	d.Add("3", s.Table3())
	d.Add("4", s.Table4())
	d.Add("fig2", s.Figure2())
	d.Add("5", s.Table5())
	d.Add("6", s.Table6())
	d.Add("7", s.Table7(nil))
	d.Add("8", s.Table8())
	d.Add("enc-metrics", s.EncMetricsReport())
	d.Add("9", s.Table9())
	d.Add("10", s.Table10())
	d.Add("11", s.Table11(3))
	d.Add("pii", s.PIIReport())
	if s.pipeline.Unexpected != nil {
		d.Add("unexpected", s.UnexpectedReport())
	}
	return d
}

// PIIReport renders the plaintext PII findings.
func (s *Study) PIIReport() *Table { return report.PIIReport(s.pipeline.Content.Findings()) }

// UnexpectedReport renders the §7.3 user-study findings (requires
// RunUncontrolled).
func (s *Study) UnexpectedReport() *Table {
	return report.UnexpectedReport(s.pipeline.Unexpected)
}

// Inference exposes the raw per-device cross-validation results.
func (s *Study) Inference() []InferenceResult { return s.pipeline.Inference }

// Findings exposes the raw PII findings.
func (s *Study) Findings() []PIIFinding { return s.pipeline.Content.Findings() }
