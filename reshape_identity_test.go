package intliot

import (
	"testing"

	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/ml"
	"github.com/neu-sns/intl-iot-go/internal/reshape"
)

// The reproducibility contract of the reshape engine, end to end through
// the public API:
//
//   - an empty stack or a zero budget changes nothing — the defended
//     study renders byte-identically to the undefended one;
//   - a fixed (stack, seed, budget) renders byte-identically run to run
//     and for any -analysis-workers value;
//   - a different seed renders differently;
//   - replaying a clean exported campaign through the same engine —
//     buffered or streamed — renders byte-identically to defending the
//     synthesis directly, because transform decisions key on fields that
//     survive the export/ingest round trip.
func TestReshapeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full studies skipped in -short")
	}
	inferCfg := analysis.InferConfig{CV: ml.CVConfig{
		TrainFrac: 0.7, Repeats: 2, Seed: 42,
		Forest: ml.ForestConfig{NumTrees: 5},
	}}
	baseCfg := func() Config {
		cfg := tinyFaultConfig("", 0)
		cfg.VPN = true
		return cfg
	}
	run := func(cfg Config, workers int) string {
		t.Helper()
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetInferenceConfig(inferCfg)
		s.SetAnalysisWorkers(workers)
		s.Run()
		return renderAll(s)
	}

	baseline := run(baseCfg(), 0)

	empty := baseCfg()
	empty.Reshape = "none"
	if run(empty, 0) != baseline {
		t.Error("empty defense stack changed the tables")
	}

	zero := baseCfg()
	zero.Reshape = "pad,shape,dummy,vpn"
	zero.ReshapeSeed = 7
	zero.ReshapeBudget = 0
	if run(zero, 0) != baseline {
		t.Error("zero-budget defense stack changed the tables")
	}

	defended := baseCfg()
	defended.Reshape = "pad,shape,dummy,vpn"
	defended.ReshapeSeed = 7
	defended.ReshapeBudget = 0.3
	want := run(defended, 0)
	if want == baseline {
		t.Error("defended study identical to clean run; defenses had no effect")
	}
	for _, workers := range []int{1, 2, 5} {
		if got := run(defended, workers); got != want {
			t.Errorf("workers=%d: defended study output differs", workers)
		}
	}

	// Note on seeds: a different ReshapeSeed produces a different wire
	// (internal/reshape's TestDifferentSeedsDiffer proves it packet by
	// packet) but not necessarily different *tables* — the §4–§6
	// aggregates are deliberately insensitive to fill-byte content,
	// ephemeral ports, and which of a device's existing endpoints a
	// cover flow borrows. So the seed check lives at the packet layer,
	// and the table layer asserts only reproducibility.

	// Defended replay: export the clean campaign, re-ingest it, and apply
	// the same engine at delivery. The wire the analyses see must be
	// byte-for-byte the wire the defended synthesis produced.
	clean, err := NewStudy(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	clean.SetInferenceConfig(inferCfg)
	clean.Run()
	dir := t.TempDir()
	if err := ingest.Export(dir, clean.Pipeline().Runner()); err != nil {
		t.Fatal(err)
	}
	replay := func(opts ingest.Options) string {
		t.Helper()
		src, err := ingest.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewReshapeEngine(defended)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStudyFromSource(reshape.Wrap(src, eng))
		s.SetInferenceConfig(inferCfg)
		s.Run()
		return renderAll(s)
	}
	if got := replay(ingest.Options{}); got != want {
		t.Error("defended buffered replay differs from defended synthesis")
	}
	if got := replay(ingest.Options{Stream: true, Window: 8}); got != want {
		t.Error("defended streamed replay differs from defended synthesis")
	}
}
