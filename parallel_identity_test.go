package intliot

import "testing"

// The tentpole guarantee through the public API: the full study — every
// report table, the PII report, and the §7.3 unexpected-behavior report —
// renders byte-identically whether synthesis and analysis run serial or
// on any number of workers.
func TestParallelStudyByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full studies skipped in -short")
	}
	run := func(workers int) string {
		cfg := tinyFaultConfig("", 0)
		cfg.UncontrolledDays = 2
		cfg.Workers = workers
		s, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.SetAnalysisWorkers(workers)
		s.Run()
		if err := s.RunUncontrolled(); err != nil {
			t.Fatal(err)
		}
		return renderAll(s) + s.UnexpectedReport().String()
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 7} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d: study output differs from serial run", workers)
		}
	}
}
