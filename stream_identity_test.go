package intliot

import (
	"reflect"
	"testing"

	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/ml"
)

// The streaming-ingest guarantee through the public API: replaying an
// exported campaign through the bounded reorder window — at any window
// size, including the degenerate window of one — renders every report
// table byte-identically to the buffer-everything ingest, and the
// ingestion report (which streaming accumulates during its index pass)
// matches count for count.
func TestStreamingIngestByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign round trips skipped in -short")
	}
	cfg := tinyFaultConfig("", 0)
	cfg.VPN = true
	inferCfg := analysis.InferConfig{CV: ml.CVConfig{
		TrainFrac: 0.7, Repeats: 2, Seed: 42,
		Forest: ml.ForestConfig{NumTrees: 5},
	}}

	direct, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct.SetInferenceConfig(inferCfg)
	direct.Run()
	dir := t.TempDir()
	if err := ingest.Export(dir, direct.Pipeline().Runner()); err != nil {
		t.Fatal(err)
	}

	run := func(opts ingest.Options, workers int) (string, ingest.Report, int64) {
		src, err := ingest.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStudyFromSource(src)
		s.SetInferenceConfig(inferCfg)
		s.SetAnalysisWorkers(workers)
		reg := NewMetrics()
		s.SetObs(reg)
		s.Run()
		return renderAll(s), src.Report(), reg.Counter("ingest_decode_passes_total").Value()
	}

	buffered, bufRep, bufPasses := run(ingest.Options{}, 0)
	if bufRep.Experiments == 0 {
		t.Fatal("no experiments ingested")
	}
	if bufPasses != 1 {
		t.Errorf("buffered ingest ran %d decode passes, want 1", bufPasses)
	}

	// Single-decode streaming (the default): the fold path must engage —
	// exactly one decode pass — and stay byte-identical for any reorder
	// window (unused by folding, but must be harmless) and worker count.
	cases := []struct{ window, workers int }{
		{1, 1}, {8, 2}, {0, 5}, // 0 = DefaultWindow
	}
	for _, tc := range cases {
		got, rep, passes := run(ingest.Options{Stream: true, Window: tc.window}, tc.workers)
		if got != buffered {
			t.Errorf("window=%d workers=%d: single-decode study output differs from buffered ingest",
				tc.window, tc.workers)
		}
		if !reflect.DeepEqual(rep, bufRep) {
			t.Errorf("window=%d workers=%d: single-decode report = %+v, buffered = %+v",
				tc.window, tc.workers, rep, bufRep)
		}
		if passes != 1 {
			t.Errorf("window=%d workers=%d: single-decode ran %d decode passes, want 1",
				tc.window, tc.workers, passes)
		}
	}

	// Legacy two-pass replay stays available behind Options.TwoPass and
	// identical too; it decodes three times (index + each leg's replay).
	for _, workers := range []int{1, 5} {
		got, rep, passes := run(ingest.Options{Stream: true, Window: 8, TwoPass: true}, workers)
		if got != buffered {
			t.Errorf("two-pass workers=%d: streamed study output differs from buffered ingest", workers)
		}
		if !reflect.DeepEqual(rep, bufRep) {
			t.Errorf("two-pass workers=%d: streamed report = %+v, buffered = %+v", workers, rep, bufRep)
		}
		if passes != 3 {
			t.Errorf("two-pass workers=%d: ran %d decode passes, want 3", workers, passes)
		}
	}
}
