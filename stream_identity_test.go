package intliot

import (
	"testing"

	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/ml"
)

// The streaming-ingest guarantee through the public API: replaying an
// exported campaign through the bounded reorder window — at any window
// size, including the degenerate window of one — renders every report
// table byte-identically to the buffer-everything ingest, and the
// ingestion report (which streaming accumulates during its index pass)
// matches count for count.
func TestStreamingIngestByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign round trips skipped in -short")
	}
	cfg := tinyFaultConfig("", 0)
	cfg.VPN = true
	inferCfg := analysis.InferConfig{CV: ml.CVConfig{
		TrainFrac: 0.7, Repeats: 2, Seed: 42,
		Forest: ml.ForestConfig{NumTrees: 5},
	}}

	direct, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct.SetInferenceConfig(inferCfg)
	direct.Run()
	dir := t.TempDir()
	if err := ingest.Export(dir, direct.Pipeline().Runner()); err != nil {
		t.Fatal(err)
	}

	run := func(opts ingest.Options) (string, ingest.Report) {
		src, err := ingest.Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStudyFromSource(src)
		s.SetInferenceConfig(inferCfg)
		s.Run()
		return renderAll(s), src.Report()
	}

	buffered, bufRep := run(ingest.Options{})
	if bufRep.Experiments == 0 {
		t.Fatal("no experiments ingested")
	}
	for _, window := range []int{1, 8, 0} { // 0 = DefaultWindow
		got, rep := run(ingest.Options{Stream: true, Window: window})
		if got != buffered {
			t.Errorf("window=%d: streamed study output differs from buffered ingest", window)
		}
		if rep != bufRep {
			t.Errorf("window=%d: streamed report = %+v, buffered = %+v", window, rep, bufRep)
		}
	}
}
