// Command moniotrd is the long-running face of the reproduction: where
// moniotr runs one campaign and exits, moniotrd keeps campaigns running
// on a schedule, accepts capture uploads for streaming ingestion, and
// serves every paper table over HTTP as canonical JSON — byte-identical
// to `moniotr -json` for the same campaign.
//
// Usage:
//
//	moniotrd [-addr host:port] [-port-file path]
//	         [-schedule "NAME=SPEC[;scale=S][;faults=P][;fault-seed=N][;reshape=S][;reshape-seed=N][;reshape-budget=F][;workers=N][;fleet=N][;fleet-seed=N]"]...
//	         [-scale tiny|quick|bench|paper] [-faults P] [-fault-seed N]
//	         [-reshape stack] [-reshape-seed n] [-reshape-budget f]
//	         [-analysis-workers n] [-max-jobs n] [-queue n] [-grace d]
//	         [-max-upload-bytes n] [-max-upload-files n]
//	         [-data dir] [-tz zone] [-simulate d]
//
// Each -schedule (repeatable) registers a recurring campaign. SPEC is
// one of:
//
//	every DURATION        e.g. "every 6h"
//	daily HH:MM           e.g. "daily 03:30"
//	on DAYS HH:MM         e.g. "on mon,thu 03:30"
//
// Wall-clock times are interpreted in -tz (an IANA zone name, default
// UTC); daily schedules fire once per civil day across DST transitions.
// Per-schedule ;key=value overrides replace the daemon-wide -scale,
// -faults, -fault-seed, -reshape, -reshape-seed, -reshape-budget and
// -analysis-workers defaults, so one schedule can run clean while
// another runs lossy or behind a traffic-reshaping defense stack.
//
// At most -max-jobs campaigns run concurrently; up to -queue more wait,
// and beyond that submissions are rejected (HTTP 503) rather than
// buffered without bound. On SIGINT/SIGTERM the daemon stops accepting
// work, cancels queued jobs, gives in-flight jobs -grace to drain, then
// cancels their context — the analysis pipeline aborts mid-stage — and
// exits 0.
//
// With -simulate the daemon does not listen at all: it fast-forwards a
// simulated clock through the given horizon (e.g. -simulate 168h for a
// week), runs every scheduled fire for real in order, prints the final
// status as JSON, and exits — a deterministic dry run of a schedule
// configuration.
//
// Endpoints: / (dashboard), /healthz, /metrics, /api/status,
// /api/schedules, /api/jobs (GET list, POST submit), /api/jobs/{id},
// /api/jobs/{id}/report, /api/upload (POST tar of a capture
// directory; archives past -max-upload-files/-max-upload-bytes get
// HTTP 413). See docs/OPERATIONS.md for the full reference and curl
// examples.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"
	_ "time/tzdata" // schedules must work without a host zoneinfo dir

	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/service"
)

// repeatable collects a repeatable string flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ", ") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

type namedSchedule struct {
	name  string
	sched service.Schedule
	spec  service.JobSpec
}

// parseScheduleFlag parses one -schedule value:
// NAME=SPEC[;scale=S][;faults=P][;fault-seed=N][;workers=N], where the
// defaults fill whatever the overrides don't set.
func parseScheduleFlag(v string, loc *time.Location, defaults service.JobSpec) (namedSchedule, error) {
	fail := func(format string, args ...any) (namedSchedule, error) {
		return namedSchedule{}, fmt.Errorf("-schedule %q: %s", v, fmt.Sprintf(format, args...))
	}
	name, rest, ok := strings.Cut(v, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return fail("want NAME=SPEC")
	}
	parts := strings.Split(rest, ";")
	sched, err := service.ParseSchedule(strings.TrimSpace(parts[0]), loc)
	if err != nil {
		return fail("%v", err)
	}
	spec := defaults
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(opt), "=")
		if !ok {
			return fail("bad option %q (want key=value)", opt)
		}
		switch key {
		case "scale":
			spec.Scale = val
		case "faults":
			spec.FaultProfile = val
		case "fault-seed":
			if spec.FaultSeed, err = strconv.ParseInt(val, 10, 64); err != nil {
				return fail("bad fault-seed: %v", err)
			}
		case "workers":
			if spec.Workers, err = strconv.Atoi(val); err != nil {
				return fail("bad workers: %v", err)
			}
		case "fleet":
			if spec.FleetHomes, err = strconv.Atoi(val); err != nil {
				return fail("bad fleet: %v", err)
			}
		case "fleet-seed":
			if spec.FleetSeed, err = strconv.ParseInt(val, 10, 64); err != nil {
				return fail("bad fleet-seed: %v", err)
			}
		case "reshape":
			spec.Reshape = val
		case "reshape-seed":
			if spec.ReshapeSeed, err = strconv.ParseInt(val, 10, 64); err != nil {
				return fail("bad reshape-seed: %v", err)
			}
		case "reshape-budget":
			if spec.ReshapeBudget, err = strconv.ParseFloat(val, 64); err != nil {
				return fail("bad reshape-budget: %v", err)
			}
		default:
			return fail("unknown option %q (want scale/faults/fault-seed/workers/fleet/fleet-seed/reshape/reshape-seed/reshape-budget)", key)
		}
	}
	return namedSchedule{name: name, sched: sched, spec: spec}, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8799", "listen address (use :0 for an ephemeral port)")
	portFile := flag.String("port-file", "", "write the bound TCP port to this file after listening")
	var schedules repeatable
	flag.Var(&schedules, "schedule", "recurring campaign, NAME=SPEC[;scale=S][;faults=P][;fault-seed=N][;workers=N][;fleet=N][;fleet-seed=N][;reshape=S][;reshape-seed=N][;reshape-budget=F] (repeatable)")
	scale := flag.String("scale", "quick", "default campaign scale for scheduled and API jobs")
	faultProfile := flag.String("faults", "", "default network-impairment profile for scheduled jobs (clean, lossy-home, flaky-vpn, outage)")
	faultSeed := flag.Int64("fault-seed", 0, "default seed for the impairment engine (0 = campaign seed)")
	reshapeStack := flag.String("reshape", "", "default traffic-reshaping defense stack for scheduled jobs (comma-separated: pad, shape, dummy, vpn)")
	reshapeSeed := flag.Int64("reshape-seed", 0, "default seed for the defense engine (0 = campaign seed)")
	reshapeBudget := flag.Float64("reshape-budget", 0, "default defense overhead budget in [0, 1]")
	maxUploadBytes := flag.Int64("max-upload-bytes", service.DefaultMaxUploadBytes, "largest accepted capture upload in bytes (413 beyond)")
	maxUploadFiles := flag.Int("max-upload-files", service.DefaultMaxUploadFiles, "most files accepted in one capture upload (413 beyond)")
	analysisWorkers := flag.Int("analysis-workers", 0, "default analysis parallelism per job: 0 = one worker per core")
	maxJobs := flag.Int("max-jobs", 1, "campaigns run concurrently")
	queueLen := flag.Int("queue", 8, "jobs waiting beyond the running ones before submissions are rejected")
	grace := flag.Duration("grace", 30*time.Second, "how long in-flight jobs may drain on shutdown before their context is cancelled")
	dataDir := flag.String("data", "", "spool directory for capture uploads (default: the system temp dir)")
	tz := flag.String("tz", "UTC", "IANA time zone for wall-clock schedules (e.g. America/New_York)")
	simulate := flag.Duration("simulate", 0, "do not listen; fast-forward the schedules through this horizon and exit")
	flag.Parse()

	logger := log.New(os.Stderr, "moniotrd: ", log.LstdFlags|log.Lmicroseconds)

	loc, err := time.LoadLocation(*tz)
	if err != nil {
		logger.Fatalf("-tz: %v", err)
	}
	defaults := service.JobSpec{
		Scale:         *scale,
		FaultProfile:  *faultProfile,
		FaultSeed:     *faultSeed,
		Reshape:       *reshapeStack,
		ReshapeSeed:   *reshapeSeed,
		ReshapeBudget: *reshapeBudget,
		Workers:       *analysisWorkers,
	}
	var named []namedSchedule
	for _, v := range schedules {
		ns, err := parseScheduleFlag(v, loc, defaults)
		if err != nil {
			logger.Fatal(err)
		}
		named = append(named, ns)
	}

	var clock service.Clock = service.RealClock()
	var sim *service.SimClock
	if *simulate > 0 {
		sim = service.NewSimClock(time.Now())
		clock = sim
	}

	reg := obs.NewRegistry()
	obs.SetDefault(reg) // pcap round-trip counters from uploaded captures

	mgr := service.NewManager(service.ManagerConfig{
		Workers: *maxJobs,
		Queue:   *queueLen,
		Clock:   clock,
		Metrics: reg,
		Logf:    logger.Printf,
	})
	sched := service.NewScheduler(clock, mgr, logger.Printf)
	for _, ns := range named {
		sched.Add(ns.name, ns.sched, ns.spec)
	}
	mgr.Start()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if sim != nil {
		runSimulation(ctx, logger, mgr, sched, sim, *simulate, reg)
		return
	}

	srv := service.NewServer(service.ServerConfig{
		Manager:        mgr,
		Scheduler:      sched,
		Metrics:        reg,
		Clock:          clock,
		DataDir:        *dataDir,
		MaxUploadBytes: *maxUploadBytes,
		MaxUploadFiles: *maxUploadFiles,
		Logf:           logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(strconv.Itoa(port)+"\n"), 0o644); err != nil {
			logger.Fatalf("port-file: %v", err)
		}
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatalf("serve: %v", err)
		}
	}()
	go sched.Run(ctx)
	logger.Printf("listening on http://%s (%d schedule(s), max %d concurrent job(s))",
		ln.Addr(), len(named), *maxJobs)

	<-ctx.Done()
	stop() // restore default signal handling: a second signal kills immediately
	logger.Printf("signal received; draining (grace %v)", *grace)
	mgr.Shutdown(*grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	counts := mgr.Counts()
	logger.Printf("bye: %d done, %d failed, %d canceled",
		counts[service.JobDone], counts[service.JobFailed], counts[service.JobCanceled])
}

// runSimulation is the -simulate path: fast-forward the simulated clock
// through the horizon, running each scheduled fire for real, then print
// a status summary as JSON.
func runSimulation(ctx context.Context, logger *log.Logger, mgr *service.Manager,
	sched *service.Scheduler, sim *service.SimClock, horizon time.Duration, reg *obs.Registry) {
	start := sim.Now()
	logger.Printf("simulating %v of schedule time from %s", horizon, start.Format(time.RFC3339))
	jobs, err := sched.Simulate(ctx, sim, start.Add(horizon))
	mgr.Shutdown(0)
	if err != nil {
		logger.Fatalf("simulate: %v", err)
	}
	logger.Printf("simulation fired %d job(s) across %v", len(jobs), horizon)
	srv := service.NewServer(service.ServerConfig{Manager: mgr, Scheduler: sched, Clock: sim, Metrics: reg})
	payload := struct {
		Status service.DaemonStatus `json:"status"`
		Jobs   []service.JobStatus  `json:"jobs"`
	}{Status: srv.Status(), Jobs: mgr.Jobs()}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		logger.Fatalf("status: %v", err)
	}
}
