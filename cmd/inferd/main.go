// Command inferd trains and evaluates the §6.3 activity-inference
// classifier for one device, printing the cross-validated per-activity F1
// scores — the building block behind Tables 9 and 10.
//
// Usage:
//
//	inferd -device "Samsung TV" [-lab US] [-reps 30] [-trees 25] [-metrics out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/cloud"
	"github.com/neu-sns/intl-iot-go/internal/devices"
	"github.com/neu-sns/intl-iot-go/internal/features"
	"github.com/neu-sns/intl-iot-go/internal/ml"
	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

func main() {
	device := flag.String("device", "Samsung TV", "device model name from Table 1")
	lab := flag.String("lab", "US", "lab: US or GB")
	reps := flag.Int("reps", 30, "automated repetitions per interaction")
	trees := flag.Int("trees", 25, "random-forest size")
	metricsOut := flag.String("metrics", "", "instrument the run and write a metrics JSON snapshot to this file")
	flag.Parse()

	l, err := testbed.NewLab(*lab, cloud.New(), 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inferd: %v\n", err)
		os.Exit(1)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		// Fail fast on an unwritable path rather than after the run.
		probe, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inferd: metrics export: %v\n", err)
			os.Exit(1)
		}
		probe.Close()
		reg = obs.NewRegistry()
		l.SetObs(reg)
		l.Internet.SetObs(reg)
	}
	slot, ok := l.Slot(*device)
	if !ok {
		fmt.Fprintf(os.Stderr, "inferd: device %q not deployed in lab %s\n", *device, *lab)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "inferd: running labelled experiments for %s (%s lab)...\n", *device, *lab)
	synthSpan := reg.StartSpan("stage:synthesize")
	ds := &ml.Dataset{FeatureNames: features.Names(features.SetPaper)}
	clock := testbed.StudyEpoch
	addRow := func(exp *testbed.Experiment) {
		ds.Features = append(ds.Features, features.Vector(exp.Packets, features.SetPaper))
		ds.Labels = append(ds.Labels, exp.Activity)
		clock = exp.End.Add(15 * time.Second)
	}
	for rep := 0; rep < 3; rep++ {
		addRow(l.RunPower(slot, false, clock, rep))
	}
	for ai := range slot.Inst.Profile.Activities {
		act := &slot.Inst.Profile.Activities[ai]
		for _, m := range act.Methods {
			n := *reps
			if act.Manual || m == devices.MethodLocal {
				n = 3
			}
			for rep := 0; rep < n; rep++ {
				addRow(l.RunInteraction(slot, act, m, false, clock, rep))
			}
		}
	}

	synthSpan.End()
	cvSpan := reg.StartSpan("stage:crossvalidate")
	res := ml.CrossValidate(ds, ml.CVConfig{
		TrainFrac: 0.7, Repeats: 10, Seed: 42,
		Forest: ml.ForestConfig{NumTrees: *trees},
	})
	cvSpan.End()
	if *metricsOut != "" {
		if err := reg.WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "inferd: metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "inferd: wrote metrics to %s\n", *metricsOut)
	}
	fmt.Printf("device: %s (%s lab), %d labelled experiments, %d activities\n",
		*device, *lab, ds.NumExamples(), len(ds.Classes()))
	fmt.Printf("device F1 (weighted): %.3f   accuracy: %.3f\n", res.DeviceF1, res.Accuracy)
	verdict := "NOT inferrable"
	if res.DeviceF1 > analysis.InferrableThreshold {
		verdict = "INFERRABLE (F1 > 0.75)"
	}
	fmt.Printf("verdict: %s\n\nper-activity F1:\n", verdict)
	type af struct {
		label string
		f1    float64
	}
	var rows []af
	for label, f1 := range res.ActivityF1 {
		rows = append(rows, af{label, f1})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].f1 > rows[j].f1 })
	for _, r := range rows {
		marker := ""
		if r.f1 > analysis.InferrableThreshold {
			marker = "  <- inferrable"
		}
		fmt.Printf("  %-28s %.3f%s\n", r.label, r.f1, marker)
	}
}
