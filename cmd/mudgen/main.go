// Command mudgen generates RFC 8520 Manufacturer Usage Description
// profiles for the device catalog and optionally verifies a capture
// against one.
//
// Usage:
//
//	mudgen -out profiles/                     # write every device's profile
//	mudgen -device "TP-Link Plug"             # print one profile
//	mudgen -device "Fire TV" -check cap.pcap  # check a capture for violations
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/neu-sns/intl-iot-go/internal/devices"
	"github.com/neu-sns/intl-iot-go/internal/mud"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

func main() {
	outDir := flag.String("out", "", "write one profile per device into this directory")
	device := flag.String("device", "", "print the profile for one device")
	check := flag.String("check", "", "pcap file to check against -device's profile")
	flag.Parse()

	switch {
	case *outDir != "":
		if err := writeAll(*outDir); err != nil {
			fail(err)
		}
	case *device != "" && *check != "":
		if err := checkCapture(*device, *check); err != nil {
			fail(err)
		}
	case *device != "":
		p, ok := devices.ByName(*device)
		if !ok {
			fail(fmt.Errorf("unknown device %q", *device))
		}
		js, err := mud.Generate(p).Marshal()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(js))
	default:
		fmt.Fprintln(os.Stderr, "usage: mudgen -out DIR | -device NAME [-check FILE.pcap]")
		os.Exit(2)
	}
}

func writeAll(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	for _, p := range devices.Catalog() {
		js, err := mud.Generate(p).Marshal()
		if err != nil {
			return err
		}
		name := strings.ReplaceAll(strings.ToLower(p.Name), " ", "-") + ".json"
		if err := os.WriteFile(filepath.Join(dir, name), js, 0o644); err != nil {
			return err
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "mudgen: wrote %d profiles to %s\n", n, dir)
	return nil
}

func checkCapture(device, pcapPath string) error {
	p, ok := devices.ByName(device)
	if !ok {
		return fmt.Errorf("unknown device %q", device)
	}
	f, err := os.Open(pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	pkts, err := testbed.ReadPcap(f)
	if err != nil {
		return err
	}
	vs := mud.NewChecker(mud.Generate(p)).Check(pkts)
	if len(vs) == 0 {
		fmt.Printf("%s: %d packets, compliant\n", device, len(pkts))
		return nil
	}
	fmt.Printf("%s: %d packets, %d violation(s)\n", device, len(pkts), len(vs))
	sum := mud.Summary(vs)
	for _, dest := range mud.SortedDestinations(sum) {
		fmt.Printf("  %-50s %d flow(s)\n", dest, sum[dest])
	}
	return fmt.Errorf("capture violates the profile")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mudgen: %v\n", err)
	os.Exit(1)
}
