// Command moniotr runs the full measurement campaign end to end — both
// labs, controlled + idle + uncontrolled experiments — and emits every
// table and figure of the paper's evaluation.
//
// Usage:
//
//	moniotr [-scale tiny|quick|bench|paper] [-csv dir] [-json] [-tables 2,5,11]
//	        [-skip-uncontrolled]
//	        [-export-captures dir] [-ingest dir] [-stream] [-ingest-window n]
//	        [-stream-two-pass] [-strict] [-dataset name|auto] [-infer-labels]
//	        [-transfer-matrix]
//	        [-metrics out.json] [-pprof :6060]
//	        [-faults clean|lossy-home|flaky-vpn|outage] [-fault-seed n] [-analysis-workers n]
//	        [-reshape pad,shape,dummy,vpn] [-reshape-seed n] [-reshape-budget f] [-reshape-matrix]
//	        [-fleet n] [-fleet-seed n]
//
// With -export-captures the campaign is additionally written to disk as
// a Mon(IoT)r-style capture directory (per-device pcaps + label
// sidecars). With -ingest the campaign is not synthesized at all:
// experiments are read back from such a directory and analysed,
// producing the same tables — byte-identical for a directory written by
// -export-captures at the same scale. -stream switches the ingest to
// bounded-memory streaming. By default that is the single-decode fold
// pass: each capture file is memory-mapped and decoded exactly once,
// experiments fold into per-worker accumulators as they decode, and the
// accumulators merge in campaign order. -stream-two-pass forces the
// legacy shape instead — files are indexed first, then re-decoded on
// demand through a reorder window of at most -ingest-window experiments
// (default 256); the fold pass also falls back to it automatically when
// per-experiment hooks demand serial delivery. Output stays
// byte-identical to buffered ingest in every mode; only the memory
// high-water mark and wall time change.
//
// -dataset selects a foreign-capture adapter (internal/dataset): with
// -ingest it teaches the walk a foreign directory layout — pcapng
// containers, 802.1Q trunk captures, Linux cooked (SLL) gateway dumps —
// and with -export-captures it writes the campaign in that foreign
// layout instead of the native one. "-dataset auto" sniffs an ingest
// tree against every registered adapter. Whatever the container or link
// framing, the analysis output is byte-identical to native ingest of
// the same campaign. -infer-labels attributes unlabeled ingest traffic
// to catalog devices via identification evidence (MAC, OUI, DNS) and
// synthesizes label windows for it, reported with per-device confidence
// in an "ingest-labels" table; -strict still counts those packets as
// inferred rather than silently delivered.
//
// -transfer-matrix replaces the normal report with the §6.4
// cross-dataset experiment: the built-in dataset trio (study-era US and
// UK rosters plus a post-study home with firmware drift and unseen
// models) is synthesized, the device-identification forest is trained
// on each and evaluated on every other, and the train×eval weighted-F1
// matrix is printed with per-cell class overlap.
//
// With -metrics the campaign is instrumented end to end (stage wall
// times, per-collector visit counts, synthesis throughput, DNS and pcap
// volume), a progress line is printed to stderr every two seconds, and
// the final snapshot is written to the given JSON file. Metrics change
// no table output. -pprof serves net/http/pprof on the given address for
// live CPU/heap profiling of paper-scale runs.
//
// With -faults the campaign runs over an impaired network: the named
// profile injects deterministic packet loss, latency, DNS failures,
// server outages and VPN tunnel flaps, seeded by -fault-seed (default:
// the campaign seed). The "clean" profile is byte-identical to omitting
// the flag. With -strict an ingest run exits non-zero if anything was
// count-and-skipped (truncated files, unknown devices, unlabeled
// packets), for CI gating.
//
// With -reshape the campaign runs behind a traffic-reshaping defense
// stack (internal/reshape): packet padding to length buckets ("pad"),
// constant-rate inter-arrival shaping ("shape"), seeded dummy-traffic
// injection ("dummy") and VPN/NAT tunnel aggregation ("vpn"), applied in
// the given order to every experiment before any analysis sees it. The
// stack works for synthesized and -ingest campaigns alike. -reshape-seed
// seeds the engine (default: the campaign seed) and -reshape-budget sets
// the overhead budget in [0, 1] — 0 is a bit-for-bit no-op, larger
// budgets buy stronger defenses at higher byte/latency cost. A fixed
// (stack, seed, budget) triple reshapes byte-identically run-to-run and
// for any -analysis-workers value. -export-captures always writes the
// raw (pre-defense) campaign, so an exported directory can be re-ingested
// under any defense. -reshape-matrix replaces the normal report with the
// attack/defense robustness matrix: the campaign is replayed undefended
// and under every defense × budget cell, measuring inference F1, idle
// detections, table drift and byte/latency overhead per cell.
//
// -analysis-workers bounds the analysis-side parallelism (sharded
// collectors, forest training, model evaluation); 0 means one worker per
// core and 1 forces the historical serial pipeline. Every table is
// byte-identical for any value — the flag trades wall time only.
//
// With -json the selected tables are written to stdout as one canonical
// JSON document (the same renderer the moniotrd report API uses, so the
// two are byte-identical for the same campaign) instead of aligned
// text. -csv continues to work alongside it.
//
// With -fleet N the two-lab study is replaced by a fleet-scale campaign:
// N simulated homes, each with a deterministically drawn device mix,
// region, fault profile and staggered clock, folded home-by-home into
// sketch-backed aggregates (see internal/fleet). -fleet-seed derives the
// whole fleet; -analysis-workers bounds cross-home parallelism, and the
// fleet tables are byte-identical for any value. -json, -csv, -tables
// and -metrics work as in study mode; the other campaign flags do not
// apply.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	intliot "github.com/neu-sns/intl-iot-go"
	"github.com/neu-sns/intl-iot-go/internal/dataset"
	"github.com/neu-sns/intl-iot-go/internal/experiments/robustness"
	"github.com/neu-sns/intl-iot-go/internal/experiments/transfer"
	"github.com/neu-sns/intl-iot-go/internal/faults"
	"github.com/neu-sns/intl-iot-go/internal/fleet"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/obs"
	"github.com/neu-sns/intl-iot-go/internal/report"
	"github.com/neu-sns/intl-iot-go/internal/reshape"
)

func main() {
	scale := flag.String("scale", "quick", "campaign scale: tiny, quick, bench or paper")
	csvDir := flag.String("csv", "", "also export tables as CSV into this directory")
	jsonOut := flag.Bool("json", false, "write the tables to stdout as one canonical JSON document instead of aligned text")
	exportDir := flag.String("export-captures", "", "write the campaign to this directory as per-device pcaps + label sidecars")
	ingestDir := flag.String("ingest", "", "skip synthesis and ingest a capture directory (as written by -export-captures)")
	tables := flag.String("tables", "all", "comma-separated table list (1-11, fig2, enc-metrics, pii, unexpected) or 'all'")
	skipUncontrolled := flag.Bool("skip-uncontrolled", false, "skip the §7.3 user-study simulation")
	metricsOut := flag.String("metrics", "", "instrument the campaign and write a metrics JSON snapshot to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	faultProfile := flag.String("faults", "", "run the campaign under a network-impairment profile (clean, lossy-home, flaky-vpn, outage)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the impairment engine (0 = campaign seed)")
	strict := flag.Bool("strict", false, "with -ingest: exit non-zero if any capture content was skipped")
	stream := flag.Bool("stream", false, "with -ingest: stream captures through a bounded reorder window instead of buffering the campaign")
	ingestWindow := flag.Int("ingest-window", 0, "with -stream: reorder window capacity in experiments (0 = default)")
	streamTwoPass := flag.Bool("stream-two-pass", false, "with -stream: force the legacy index+replay shape instead of the single-decode fold pass")
	analysisWorkers := flag.Int("analysis-workers", 0, "analysis parallelism: 0 = one worker per core, 1 = serial; output is identical for any value")
	reshapeStack := flag.String("reshape", "", "apply a traffic-reshaping defense stack (comma-separated: pad, shape, dummy, vpn)")
	reshapeSeed := flag.Int64("reshape-seed", 0, "seed for the defense engine (0 = campaign seed)")
	reshapeBudget := flag.Float64("reshape-budget", 0.25, "defense overhead budget in [0, 1]; 0 disables every transform bit-for-bit")
	reshapeMatrix := flag.Bool("reshape-matrix", false, "sweep defense x budget against the campaign and print the robustness matrix")
	fleetHomes := flag.Int("fleet", 0, "run a fleet-scale campaign of N simulated homes instead of the two-lab study")
	fleetSeed := flag.Int64("fleet-seed", 1, "seed deriving the whole fleet (device mixes, fault profiles, clocks)")
	datasetName := flag.String("dataset", "", "with -ingest/-export-captures: foreign dataset adapter ("+strings.Join(dataset.Names(), ", ")+", or 'auto' to sniff an ingest tree)")
	inferLabels := flag.Bool("infer-labels", false, "with -ingest: attribute unlabeled traffic to devices via identification evidence and synthesize label windows")
	transferMatrix := flag.Bool("transfer-matrix", false, "train the device-identification forest on each built-in dataset, evaluate on every other, and print the cross-dataset F1 matrix")
	flag.Parse()

	if _, err := faults.ByName(*faultProfile); err != nil {
		fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
		os.Exit(2)
	}
	if _, err := reshape.ParseStack(*reshapeStack); err != nil {
		fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
		os.Exit(2)
	}

	var adapter dataset.Adapter
	if *datasetName != "" {
		if *ingestDir == "" && *exportDir == "" {
			fmt.Fprintln(os.Stderr, "moniotr: -dataset requires -ingest or -export-captures")
			os.Exit(2)
		}
		var err error
		if *datasetName == "auto" {
			if *ingestDir == "" {
				fmt.Fprintln(os.Stderr, "moniotr: -dataset auto needs an -ingest tree to sniff")
				os.Exit(2)
			}
			adapter, err = dataset.Detect(*ingestDir)
		} else {
			adapter, err = dataset.ByName(*datasetName)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "moniotr: dataset adapter %s: %s\n", adapter.Name(), adapter.Description())
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "moniotr: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "moniotr: pprof listening on %s\n", *pprofAddr)
	}

	if *fleetHomes > 0 {
		if *faultProfile != "" {
			fmt.Fprintln(os.Stderr, "moniotr: -faults is ignored with -fleet (homes draw their own fault profiles)")
		}
		runFleet(*fleetHomes, *fleetSeed, *analysisWorkers, *tables, *jsonOut, *csvDir, *metricsOut)
		return
	}

	if *transferMatrix {
		runTransferMatrix(*analysisWorkers, *jsonOut, *csvDir)
		return
	}

	cfg, err := intliot.ScaleConfig(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
		os.Exit(2)
	}

	cfg.FaultProfile = *faultProfile
	cfg.FaultSeed = *faultSeed
	cfg.Reshape = *reshapeStack
	cfg.ReshapeSeed = *reshapeSeed
	cfg.ReshapeBudget = *reshapeBudget

	if *reshapeMatrix {
		runReshapeMatrix(cfg, *analysisWorkers, *jsonOut, *csvDir)
		return
	}

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(t)] = true
	}
	selected := func(key string) bool { return want["all"] || want[key] }

	start := time.Now()
	var study *intliot.Study
	var src *ingest.Source
	if *ingestDir != "" {
		if *faultProfile != "" && *faultProfile != "clean" {
			fmt.Fprintln(os.Stderr, "moniotr: -faults shapes synthesis only and is ignored with -ingest")
		}
		if *stream {
			fmt.Fprintf(os.Stderr, "moniotr: streaming captures from %s...\n", *ingestDir)
		} else {
			fmt.Fprintf(os.Stderr, "moniotr: ingesting captures from %s...\n", *ingestDir)
		}
		opts := ingest.Options{
			Stream:      *stream,
			Window:      *ingestWindow,
			TwoPass:     *streamTwoPass,
			InferLabels: *inferLabels,
		}
		if adapter != nil {
			opts.Layout = adapter.Layout()
		}
		var err error
		src, err = ingest.Open(*ingestDir, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
			os.Exit(1)
		}
		eng, err := intliot.NewReshapeEngine(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
			os.Exit(2)
		}
		study = intliot.NewStudyFromSource(reshape.Wrap(src, eng))
		if !*skipUncontrolled {
			fmt.Fprintln(os.Stderr, "moniotr: capture directories carry no user-study campaign; skipping uncontrolled analysis")
			*skipUncontrolled = true
		}
	} else {
		fmt.Fprintf(os.Stderr, "moniotr: building labs and running the %s-scale campaign...\n", *scale)
		s, err := intliot.NewStudy(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
			os.Exit(1)
		}
		study = s
	}
	study.SetAnalysisWorkers(*analysisWorkers)
	var reg *intliot.Metrics
	stopProgress := func() {}
	if *metricsOut != "" {
		// Fail fast on an unwritable path: a paper-scale campaign runs
		// for minutes, and losing its metrics at the end is worse than
		// refusing to start.
		probe, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: metrics export: %v\n", err)
			os.Exit(1)
		}
		probe.Close()
		reg = intliot.NewMetrics()
		study.SetObs(reg)
		obs.SetDefault(reg) // pcap round-trip counters
		stopProgress = progressLoop(reg)
	}
	study.Run()
	if src != nil {
		fmt.Fprintf(os.Stderr, "moniotr: ingest: %s\n", src.Report())
		if *strict {
			if err := src.Report().Strict(); err != nil {
				fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *exportDir != "" {
		if src != nil {
			fmt.Fprintln(os.Stderr, "moniotr: -export-captures is ignored with -ingest")
		} else if adapter != nil {
			if err := adapter.Export(*exportDir, study.Pipeline().Runner()); err != nil {
				fmt.Fprintf(os.Stderr, "moniotr: capture export: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "moniotr: wrote %s-layout captures to %s\n", adapter.Name(), *exportDir)
		} else if err := ingest.Export(*exportDir, study.Pipeline().Runner()); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: capture export: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "moniotr: wrote per-device captures to %s\n", *exportDir)
		}
	}
	if !*skipUncontrolled {
		if err := study.RunUncontrolled(); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: %v\n", err)
			os.Exit(1)
		}
	}
	stopProgress()
	study.Summary(os.Stderr)
	fmt.Fprintf(os.Stderr, "moniotr: campaign done in %v\n\n", time.Since(start).Round(time.Millisecond))

	doc := study.ReportDocument()
	if src != nil {
		if lt := src.Report().LabelTable(); lt != nil {
			doc.Add("ingest-labels", lt)
		}
	}
	doc = doc.Filter(selected)
	if *jsonOut {
		if err := doc.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: json render: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range doc.Entries {
			e.Table.Render(os.Stdout)
			fmt.Println()
		}
	}
	if *csvDir != "" {
		for _, e := range doc.Entries {
			if err := exportCSV(*csvDir, e.Key, e.Table); err != nil {
				fmt.Fprintf(os.Stderr, "moniotr: csv export: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *metricsOut != "" {
		if err := reg.WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "moniotr: wrote metrics to %s\n", *metricsOut)
	}
}

// runReshapeMatrix executes the -reshape-matrix mode: replay the
// campaign undefended and under every default defense × budget cell,
// then render the robustness matrix through the -json/-csv machinery.
func runReshapeMatrix(cfg intliot.Config, workers int, jsonOut bool, csvDir string) {
	fmt.Fprintln(os.Stderr, "moniotr: sweeping defense x budget (one full campaign per cell)...")
	start := time.Now()
	lastLine := time.Now()
	res, err := robustness.Sweep(robustness.Config{
		Campaign: cfg,
		Seed:     cfg.ReshapeSeed,
		Workers:  workers,
		Progress: func(done, total int) {
			if time.Since(lastLine) >= 2*time.Second || done == total {
				fmt.Fprintf(os.Stderr, "moniotr: matrix progress: %d/%d cells\n", done, total)
				lastLine = time.Now()
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "moniotr: reshape matrix: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "moniotr: matrix done in %v\n\n", time.Since(start).Round(time.Millisecond))

	tbl := res.Table()
	if jsonOut {
		doc := &report.Document{}
		doc.Add("reshape-matrix", tbl)
		if err := doc.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: json render: %v\n", err)
			os.Exit(1)
		}
	} else {
		tbl.Render(os.Stdout)
	}
	if csvDir != "" {
		if err := exportCSV(csvDir, "reshape-matrix", tbl); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: csv export: %v\n", err)
			os.Exit(1)
		}
	}
}

// runTransferMatrix executes the -transfer-matrix mode: synthesize the
// built-in dataset trio, train the §6.1 forest on each, evaluate on
// every other, and render the train×eval F1 matrix plus dataset sizes
// through the -json/-csv machinery.
func runTransferMatrix(workers int, jsonOut bool, csvDir string) {
	fmt.Fprintln(os.Stderr, "moniotr: synthesizing transfer datasets and training one forest per cell...")
	start := time.Now()
	lastLine := time.Now()
	res, err := transfer.Run(transfer.Config{
		Workers: workers,
		Progress: func(done, total int) {
			if time.Since(lastLine) >= 2*time.Second || done == total {
				fmt.Fprintf(os.Stderr, "moniotr: transfer progress: %d/%d cells\n", done, total)
				lastLine = time.Now()
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "moniotr: transfer matrix: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "moniotr: transfer matrix done in %v\n\n", time.Since(start).Round(time.Millisecond))

	doc := &report.Document{}
	doc.Add("transfer-matrix", res.Matrix())
	doc.Add("transfer-datasets", res.SizeTable())
	if jsonOut {
		if err := doc.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: json render: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range doc.Entries {
			e.Table.Render(os.Stdout)
			fmt.Println()
		}
	}
	if csvDir != "" {
		for _, e := range doc.Entries {
			if err := exportCSV(csvDir, e.Key, e.Table); err != nil {
				fmt.Fprintf(os.Stderr, "moniotr: csv export: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// runFleet executes the -fleet campaign mode: plan N homes, drive each
// through synthesis + analysis, fold into sketch-backed aggregates, and
// render the fleet report document through the same -json/-csv/-tables
// machinery as study mode.
func runFleet(homes int, seed int64, workers int, tables string, jsonOut bool, csvDir, metricsOut string) {
	want := map[string]bool{}
	for _, t := range strings.Split(tables, ",") {
		want[strings.TrimSpace(t)] = true
	}
	selected := func(key string) bool { return want["all"] || want[key] }

	var reg *intliot.Metrics
	if metricsOut != "" {
		probe, err := os.Create(metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: metrics export: %v\n", err)
			os.Exit(1)
		}
		probe.Close()
		reg = intliot.NewMetrics()
	}

	fmt.Fprintf(os.Stderr, "moniotr: running a %d-home fleet campaign (seed %d)...\n", homes, seed)
	start := time.Now()
	lastLine := time.Now()
	agg, err := fleet.Run(context.Background(), fleet.Config{
		Homes:   homes,
		Seed:    seed,
		Workers: workers,
		Progress: func(done, total int) {
			if time.Since(lastLine) >= 2*time.Second || done == total {
				fmt.Fprintf(os.Stderr, "moniotr: fleet progress: %d/%d homes\n", done, total)
				lastLine = time.Now()
			}
		},
	}, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moniotr: fleet: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "moniotr: fleet campaign done in %v\n\n", time.Since(start).Round(time.Millisecond))

	doc := report.FleetDocument(agg).Filter(selected)
	if jsonOut {
		if err := doc.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: json render: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range doc.Entries {
			e.Table.Render(os.Stdout)
			fmt.Println()
		}
	}
	if csvDir != "" {
		for _, e := range doc.Entries {
			if err := exportCSV(csvDir, e.Key, e.Table); err != nil {
				fmt.Fprintf(os.Stderr, "moniotr: csv export: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if metricsOut != "" {
		if err := reg.WriteJSONFile(metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "moniotr: metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "moniotr: wrote metrics to %s\n", metricsOut)
	}
}

// progressLoop prints a campaign progress line to stderr every two
// seconds until the returned stop function is called.
func progressLoop(reg *intliot.Metrics) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Fprintf(os.Stderr,
					"moniotr: progress: stage=%s experiments=%d packets=%.1fM bytes=%s dns=%d\n",
					reg.Label("stage"),
					reg.Counter("experiments_total").Value(),
					float64(reg.Counter("packets_synthesized_total").Value())/1e6,
					obs.HumanBytes(reg.Counter("bytes_synthesized_total").Value()),
					reg.Counter("dns_queries_total").Value())
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

func exportCSV(dir, key string, tbl *intliot.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "table_"+key+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.RenderCSV(f)
}
