// Command pcapinfo inspects a capture the way the analysis pipeline
// sees it: container format (classic pcap or pcapng, either endianness,
// per-interface link types), per-packet summaries with 802.1Q and Linux
// cooked (SLL) framing decoded, flow rollups, per-flow encryption
// verdicts, and evidence of traffic-reshaping defenses (pad quantum,
// constant-rate shaping, cover flows, VPN tunneling). It also generates
// demo captures — optionally pre-reshaped — so the tool is usable
// without hardware.
//
// Usage:
//
//	pcapinfo capture.pcap                     # inspect a capture
//	pcapinfo -demo capture.pcap               # write a demo capture, then inspect it
//	pcapinfo -demo -reshape pad,dummy x.pcap  # demo capture behind a defense stack
//	pcapinfo -flows capture.pcap              # flow summary only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/cloud"
	"github.com/neu-sns/intl-iot-go/internal/devices"
	"github.com/neu-sns/intl-iot-go/internal/entropy"
	"github.com/neu-sns/intl-iot-go/internal/netx"
	"github.com/neu-sns/intl-iot-go/internal/pcapio"
	"github.com/neu-sns/intl-iot-go/internal/reshape"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

func main() {
	demo := flag.Bool("demo", false, "first write a demo capture (Samsung TV power-on) to the given path")
	flowsOnly := flag.Bool("flows", false, "print only the flow summary")
	maxPackets := flag.Int("n", 20, "maximum packets to print (0 = all)")
	reshapeStack := flag.String("reshape", "", "with -demo: defense stack to apply before writing (comma-separated pad,shape,dummy,vpn)")
	reshapeSeed := flag.Int64("reshape-seed", 7, "with -demo -reshape: defense seed")
	reshapeBudget := flag.Float64("reshape-budget", 0.3, "with -demo -reshape: defense overhead budget in (0, 1]")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcapinfo [-demo] [-reshape STACK [-reshape-seed N] [-reshape-budget F]] [-flows] [-n N] <file.pcap>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *demo {
		if err := writeDemo(path, *reshapeStack, *reshapeSeed, *reshapeBudget); err != nil {
			fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pcapinfo: wrote demo capture to %s\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	pr, err := pcapio.NewReader(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
		os.Exit(1)
	}
	recs, err := pr.ReadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
		os.Exit(1)
	}
	printFormat(pr)
	var pkts []*netx.Packet
	vlan, sll := 0, 0
	for _, rec := range recs {
		link := rec.Link
		if link == 0 {
			link = pr.LinkType()
		}
		p, err := netx.DecodeLink(rec.Time, rec.Data, link)
		if err != nil {
			continue // tolerate malformed frames like tcpdump does
		}
		overhead := len(rec.Data) - p.Meta.CaptureLength
		if p.Meta.Length = rec.OrigLen - overhead; p.Meta.Length < 0 {
			p.Meta.Length = 0
		}
		if p.SLL != nil {
			sll++
		} else if len(p.Eth.VLAN) > 0 {
			vlan++
		}
		pkts = append(pkts, p)
	}
	fmt.Printf("%d packets (%d vlan-tagged, %d linux-sll)\n", len(pkts), vlan, sll)

	if !*flowsOnly {
		for i, p := range pkts {
			if *maxPackets > 0 && i >= *maxPackets {
				fmt.Printf("... (%d more)\n", len(pkts)-i)
				break
			}
			fmt.Println(p)
		}
		fmt.Println()
	}

	flows := netx.AssembleFlows(pkts)
	fmt.Printf("%d flows\n", len(flows))
	for _, fl := range flows {
		v := entropy.ClassifyFlow(fl, entropy.PaperThresholds)
		fmt.Printf("  %-46s %4d pkts %8d B  %-11s (%s)\n",
			fl.Key, len(fl.Packets), fl.TotalWireBytes(), v.Class, v.Method)
	}

	fmt.Println()
	printReshapeEvidence(pkts)
}

// printFormat summarizes the container before any packet is shown:
// classic pcap vs pcapng, byte order, timestamp resolution, and (for
// pcapng) the interface table with per-interface link types.
func printFormat(pr *pcapio.Reader) {
	order := "little-endian"
	if pr.BigEndian() {
		order = "big-endian"
	}
	if pr.PcapNG() {
		fmt.Printf("format: pcapng, %s\n", order)
		for i, ifc := range pr.Interfaces() {
			res := "µs"
			if ifc.Nanosecond {
				res = "ns"
			}
			fmt.Printf("  if%d: %s, snaplen %d, %s timestamps\n",
				i, linkName(ifc.LinkType), ifc.SnapLen, res)
		}
		return
	}
	res := "µs"
	if pr.Nanosecond() {
		res = "ns"
	}
	fmt.Printf("format: pcap, %s, %s, %s timestamps\n", order, linkName(pr.LinkType()), res)
}

func linkName(link uint32) string {
	switch link {
	case netx.LinkEthernet:
		return "ethernet (DLT 1)"
	case netx.LinkLinuxSLL:
		return "linux-sll (DLT 113)"
	default:
		return fmt.Sprintf("DLT %d", link)
	}
}

// printReshapeEvidence reports the wire signatures each reshape defense
// leaves behind: a common payload-length quantum (padding), a dominant
// constant inter-arrival gap (shaping), strippable unidirectional
// UDP/443 flows (cover traffic), and UDP/4500 NAT-T framing (VPN
// aggregation). On an undefended capture every signal reads absent.
func printReshapeEvidence(pkts []*netx.Packet) {
	fmt.Println("reshape evidence")

	// Padding: look for a length quantum — a q ≥ 32 such that most
	// payload lengths are multiples of q. Organic traffic has ~uniform
	// length diversity, so no large q covers a majority; a padded capture
	// quantizes to its bucket size even when other defenses (cover flows,
	// tunnel cells) add their own fixed sizes. DNS is skipped like the
	// pad transform does.
	total := 0
	hist := map[int]int{}
	for _, p := range pkts {
		if len(p.Payload) == 0 || (p.UDP != nil && (p.UDP.SrcPort == 53 || p.UDP.DstPort == 53)) {
			continue
		}
		total++
		hist[len(p.Payload)]++
	}
	quantum, covered := 0, 0
	for q := range hist {
		if q < 32 {
			continue
		}
		n := 0
		for l, c := range hist {
			if l%q == 0 {
				n += c
			}
		}
		if n > covered || (n == covered && q > quantum) {
			quantum, covered = q, n
		}
	}
	switch {
	case total == 0:
		fmt.Println("  padding: no payload-bearing packets")
	case quantum >= 32 && covered*2 >= total:
		fmt.Printf("  padding: DETECTED — %d/%d payloads quantized to %d B buckets (%d distinct lengths)\n",
			covered, total, quantum, len(hist))
	default:
		fmt.Printf("  padding: absent (best quantum %d B covers %d/%d payloads, %d distinct lengths)\n",
			quantum, covered, total, len(hist))
	}

	// Shaping: the share of inter-arrival gaps within 1 ms of the modal
	// gap. A constant-rate link pushes this toward 1; organic captures
	// stay low.
	if len(pkts) >= 3 {
		gaps := make([]int64, 0, len(pkts)-1)
		for i := 1; i < len(pkts); i++ {
			gaps = append(gaps, pkts[i].Meta.Timestamp.UnixNano()-pkts[i-1].Meta.Timestamp.UnixNano())
		}
		buckets := map[int64]int{}
		for _, g := range gaps {
			buckets[g/int64(1e6)]++ // 1 ms buckets
		}
		mode, modeN := int64(0), 0
		for b, n := range buckets {
			if n > modeN || (n == modeN && b < mode) {
				mode, modeN = b, n
			}
		}
		frac := float64(modeN) / float64(len(gaps))
		verdict := "absent"
		if frac >= 0.5 {
			verdict = "DETECTED"
		}
		fmt.Printf("  shaping: %s — %.0f%% of %d inter-arrival gaps in the modal 1 ms bucket (~%d ms)\n",
			verdict, 100*frac, len(gaps), mode)
	} else {
		fmt.Println("  shaping: too few packets to judge")
	}

	// Cover traffic: what the degrade pass would strip.
	if _, n := analysis.FilterCoverFlows(pkts); n > 0 {
		fmt.Printf("  cover flows: DETECTED — %d packets match the cover-traffic signature\n", n)
	} else {
		fmt.Println("  cover flows: absent")
	}

	// VPN aggregation: NAT-T framing share.
	if n := analysis.CountTunnelPackets(pkts); n > 0 {
		fmt.Printf("  vpn tunnel: DETECTED — %d/%d packets ride UDP/4500 NAT-T framing\n", n, len(pkts))
	} else {
		fmt.Println("  vpn tunnel: absent")
	}
}

// writeDemo synthesizes a Samsung TV power-on capture, optionally run
// through a reshape defense stack before hitting the pcap.
func writeDemo(path, stack string, seed int64, budget float64) error {
	lab, err := testbed.NewLab(devices.LabUS, cloud.New(), 1)
	if err != nil {
		return err
	}
	slot, ok := lab.Slot("Samsung TV")
	if !ok {
		return fmt.Errorf("Samsung TV missing from catalog")
	}
	exp := lab.RunPower(slot, false, testbed.StudyEpoch, 0)
	names, err := reshape.ParseStack(stack)
	if err != nil {
		return err
	}
	if len(names) != 0 {
		eng, err := reshape.New(reshape.Config{Stack: names, Seed: seed, Budget: budget})
		if err != nil {
			return err
		}
		eng.Transform(exp)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return testbed.WritePcap(f, exp)
}
