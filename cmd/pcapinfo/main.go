// Command pcapinfo inspects a pcap capture the way the analysis pipeline
// sees it: per-packet summaries, flow rollups, and per-flow encryption
// verdicts. It also generates demo captures so the tool is usable without
// hardware.
//
// Usage:
//
//	pcapinfo capture.pcap          # inspect a capture
//	pcapinfo -demo capture.pcap    # write a demo capture, then inspect it
//	pcapinfo -flows capture.pcap   # flow summary only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/neu-sns/intl-iot-go/internal/cloud"
	"github.com/neu-sns/intl-iot-go/internal/devices"
	"github.com/neu-sns/intl-iot-go/internal/entropy"
	"github.com/neu-sns/intl-iot-go/internal/netx"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

func main() {
	demo := flag.Bool("demo", false, "first write a demo capture (Samsung TV power-on) to the given path")
	flowsOnly := flag.Bool("flows", false, "print only the flow summary")
	maxPackets := flag.Int("n", 20, "maximum packets to print (0 = all)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcapinfo [-demo] [-flows] [-n N] <file.pcap>")
		os.Exit(2)
	}
	path := flag.Arg(0)

	if *demo {
		if err := writeDemo(path); err != nil {
			fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pcapinfo: wrote demo capture to %s\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	pkts, err := testbed.ReadPcap(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcapinfo: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d packets\n", len(pkts))

	if !*flowsOnly {
		for i, p := range pkts {
			if *maxPackets > 0 && i >= *maxPackets {
				fmt.Printf("... (%d more)\n", len(pkts)-i)
				break
			}
			fmt.Println(p)
		}
		fmt.Println()
	}

	flows := netx.AssembleFlows(pkts)
	fmt.Printf("%d flows\n", len(flows))
	for _, fl := range flows {
		v := entropy.ClassifyFlow(fl, entropy.PaperThresholds)
		fmt.Printf("  %-46s %4d pkts %8d B  %-11s (%s)\n",
			fl.Key, len(fl.Packets), fl.TotalWireBytes(), v.Class, v.Method)
	}
}

// writeDemo synthesizes a Samsung TV power-on capture.
func writeDemo(path string) error {
	lab, err := testbed.NewLab(devices.LabUS, cloud.New(), 1)
	if err != nil {
		return err
	}
	slot, ok := lab.Slot("Samsung TV")
	if !ok {
		return fmt.Errorf("Samsung TV missing from catalog")
	}
	exp := lab.RunPower(slot, false, testbed.StudyEpoch, 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return testbed.WritePcap(f, exp)
}
