GO ?= go

.PHONY: check vet fmt build test race racecore bench fuzz smoke chaos

# Pre-PR gate: everything here must pass before sending a change.
# racecore runs first: the packages that juggle goroutines and the fault
# engine fail fast before the full -race sweep.
check: vet fmt build racecore race smoke chaos

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race gate over the concurrency-heavy packages: the impairment
# engine (consulted from parallel lab goroutines), the shared cloud
# model, the campaign runner that fans out across labs, the parallel
# forest trainer, the sharded collector stage, and the streaming
# ingest dispatcher with its bounded reorder window.
racecore:
	$(GO) test -race ./internal/faults/... ./internal/cloud/... ./internal/experiments/... \
		./internal/ml/... ./internal/analysis/... ./internal/ingest/...

# Benchmark sweep (-run '^$$' skips the test suites): the root table
# harness — which also refreshes BENCH_pipeline.json with the campaign's
# stage wall times and throughput — plus the forest-training and
# collector-stage benchmarks that record the parallel speedup.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/ml ./internal/analysis

# Run every pcap-parsing fuzzer briefly; the seed corpus plus a few
# seconds of mutation catches framing regressions without CI-scale cost.
fuzz:
	@for f in $$($(GO) test ./internal/pcapio -list '^Fuzz' | grep '^Fuzz'); do \
		echo "fuzzing $$f"; \
		$(GO) test ./internal/pcapio -run '^$$' -fuzz "^$$f$$" -fuzztime 5s || exit 1; \
	done

# End-to-end capture round trip: export a tiny campaign as per-device
# pcaps, re-ingest it — buffered and streamed through a small reorder
# window — and require byte-identical table output from all three runs.
smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -export-captures "$$tmp/caps" \
		> "$$tmp/direct.out" 2> "$$tmp/direct.err" && \
	"$$tmp/moniotr" -ingest "$$tmp/caps" \
		> "$$tmp/ingested.out" 2> "$$tmp/ingested.err" && \
	"$$tmp/moniotr" -ingest "$$tmp/caps" -stream -ingest-window 16 \
		> "$$tmp/streamed.out" 2> "$$tmp/streamed.err" && \
	cmp "$$tmp/direct.out" "$$tmp/ingested.out" && \
	cmp "$$tmp/direct.out" "$$tmp/streamed.out" && \
	echo "smoke: export->ingest tables byte-identical (buffered + streamed)"

# Chaos smoke: a tiny campaign over an impaired network must complete
# with no fatal errors, reproduce byte-identically under the same seed,
# and account for every injected fault in the metrics snapshot.
chaos:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -faults lossy-home -fault-seed 7 \
		-metrics "$$tmp/metrics.json" > "$$tmp/a.out" 2> "$$tmp/a.err" && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -faults lossy-home -fault-seed 7 \
		> "$$tmp/b.out" 2> "$$tmp/b.err" && \
	cmp "$$tmp/a.out" "$$tmp/b.out" && \
	grep -q '"faults_pkts_dropped_total"' "$$tmp/metrics.json" && \
	grep -q '"faults_retransmissions_total"' "$$tmp/metrics.json" && \
	echo "chaos: lossy-home campaign reproducible, faults accounted"
