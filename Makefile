GO ?= go

.PHONY: check vet fmt build test race bench

# Pre-PR gate: everything here must pass before sending a change.
check: vet fmt build race

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
