GO ?= go

.PHONY: check vet fmt build test race bench fuzz smoke

# Pre-PR gate: everything here must pass before sending a change.
check: vet fmt build race smoke

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Run every pcap-parsing fuzzer briefly; the seed corpus plus a few
# seconds of mutation catches framing regressions without CI-scale cost.
fuzz:
	@for f in $$($(GO) test ./internal/pcapio -list '^Fuzz' | grep '^Fuzz'); do \
		echo "fuzzing $$f"; \
		$(GO) test ./internal/pcapio -run '^$$' -fuzz "^$$f$$" -fuzztime 5s || exit 1; \
	done

# End-to-end capture round trip: export a tiny campaign as per-device
# pcaps, re-ingest it, and require byte-identical table output.
smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -export-captures "$$tmp/caps" \
		> "$$tmp/direct.out" 2> "$$tmp/direct.err" && \
	"$$tmp/moniotr" -ingest "$$tmp/caps" \
		> "$$tmp/ingested.out" 2> "$$tmp/ingested.err" && \
	cmp "$$tmp/direct.out" "$$tmp/ingested.out" && \
	echo "smoke: export->ingest tables byte-identical"
