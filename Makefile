GO ?= go

.PHONY: check vet fmt build test race racecore bench perfguard fuzz smoke datasets-smoke chaos reshape-smoke serve-smoke

# Pre-PR gate: everything here must pass before sending a change.
# racecore runs first: the packages that juggle goroutines and the fault
# engine fail fast before the full -race sweep.
check: vet fmt build racecore race smoke datasets-smoke chaos reshape-smoke serve-smoke

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The root package's byte-identity suites run multi-minute campaigns
# that the race detector slows ~10x; give the package binary room
# beyond go test's default 10m timeout.
race:
	$(GO) test -race -timeout 40m ./...

# Focused race gate over the concurrency-heavy packages: the impairment
# engine (consulted from parallel lab goroutines), the shared cloud
# model, the campaign runner that fans out across labs, the parallel
# forest trainer, the sharded collector stage, the streaming ingest
# dispatcher with its bounded reorder window and the single-decode fold
# pass, and the fleet runner's bounded-lead home pool folding into
# shared-seed sketches.
racecore:
	$(GO) test -race ./internal/faults/... ./internal/cloud/... ./internal/experiments/... \
		./internal/ml/... ./internal/analysis/... ./internal/ingest/... \
		./internal/service/... ./internal/fleet/... ./internal/sketch/... \
		./internal/reshape/...

# Benchmark sweep (-run '^$$' skips the test suites): the root table
# harness — which also refreshes BENCH_pipeline.json with the campaign's
# stage wall times and throughput — plus the ingest-mode comparison
# (buffered vs two-pass vs single-decode), the forest-training and
# collector-stage benchmarks that record the parallel speedup, the
# fleet synthesis throughput, the sketch merge/ingest hot paths and the
# multi-metric entropy family.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/ml ./internal/analysis \
		./internal/fleet ./internal/sketch ./internal/reshape ./internal/entropy \
		./internal/dataset

# Perf regression gate: single-decode streaming must hold the checked-in
# fraction of buffered throughput on the tiny export (floor in
# perfguard_test.go). Wall-clock sensitive — run on a quiet machine.
perfguard:
	MONIOTR_PERFGUARD=1 $(GO) test -run TestStreamingThroughputFloor -count=1 -v .

# Run every pcap-parsing fuzzer briefly; the seed corpus plus a few
# seconds of mutation catches framing regressions without CI-scale cost.
fuzz:
	@for f in $$($(GO) test ./internal/pcapio -list '^Fuzz' | grep '^Fuzz'); do \
		echo "fuzzing $$f"; \
		$(GO) test ./internal/pcapio -run '^$$' -fuzz "^$$f$$" -fuzztime 5s || exit 1; \
	done

# End-to-end capture round trip: export a tiny campaign as per-device
# pcaps, re-ingest it — buffered, streamed through the single-decode
# fold pass, and streamed through the legacy two-pass replayer with a
# small reorder window — and require byte-identical table output from
# all four runs.
smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -export-captures "$$tmp/caps" \
		> "$$tmp/direct.out" 2> "$$tmp/direct.err" && \
	"$$tmp/moniotr" -ingest "$$tmp/caps" \
		> "$$tmp/ingested.out" 2> "$$tmp/ingested.err" && \
	"$$tmp/moniotr" -ingest "$$tmp/caps" -stream -ingest-window 16 \
		> "$$tmp/streamed.out" 2> "$$tmp/streamed.err" && \
	"$$tmp/moniotr" -ingest "$$tmp/caps" -stream -stream-two-pass -ingest-window 16 \
		> "$$tmp/twopass.out" 2> "$$tmp/twopass.err" && \
	cmp "$$tmp/direct.out" "$$tmp/ingested.out" && \
	cmp "$$tmp/direct.out" "$$tmp/streamed.out" && \
	cmp "$$tmp/direct.out" "$$tmp/twopass.out" && \
	echo "smoke: export->ingest tables byte-identical (buffered + single-decode + two-pass)"

# Foreign-dataset smoke: export a tiny campaign through every dataset
# adapter (pcapng containers, 802.1Q trunk pcaps, Linux cooked gateway
# dumps), ingest each foreign tree back through its adapter under
# -strict, and require table output byte-identical to the natively
# exported + ingested campaign. "-dataset auto" must sniff each tree.
# Finally the cross-dataset transfer matrix must render all three
# built-in datasets.
datasets-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -export-captures "$$tmp/native" \
		> "$$tmp/direct.out" 2> "$$tmp/direct.err" && \
	for a in pcapng vlan-trunk sll-gateway; do \
		"$$tmp/moniotr" -scale tiny -skip-uncontrolled -dataset "$$a" \
			-export-captures "$$tmp/$$a" > /dev/null 2> "$$tmp/$$a.exp.err" || exit 1; \
		"$$tmp/moniotr" -ingest "$$tmp/$$a" -dataset auto -strict \
			> "$$tmp/$$a.out" 2> "$$tmp/$$a.err" || { cat "$$tmp/$$a.err"; exit 1; }; \
		grep -q "dataset adapter $$a" "$$tmp/$$a.err" || \
			{ echo "datasets-smoke: auto-detect picked the wrong adapter for $$a"; exit 1; }; \
		cmp "$$tmp/direct.out" "$$tmp/$$a.out" || \
			{ echo "datasets-smoke: $$a tables diverge from native"; exit 1; }; \
	done && \
	"$$tmp/moniotr" -transfer-matrix -json > "$$tmp/transfer.json" 2> "$$tmp/transfer.err" && \
	for d in us-study uk-study post-study; do \
		grep -q "$$d" "$$tmp/transfer.json" || \
			{ echo "datasets-smoke: transfer matrix missing $$d"; exit 1; }; \
	done && \
	echo "datasets-smoke: pcapng + vlan-trunk + sll-gateway ingest byte-identical to native; transfer matrix rendered"

# Daemon smoke: start moniotrd on an ephemeral port, upload a tiny
# exported campaign as a tar archive, wait for the streaming-ingest job,
# and require the daemon's JSON report to be byte-identical to the CLI's
# `moniotr -json` output for the same campaign. SIGTERM must drain the
# daemon cleanly (exit 0).
serve-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	$(GO) build -o "$$tmp/moniotrd" ./cmd/moniotrd && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -export-captures "$$tmp/caps" -json \
		> "$$tmp/cli.json" 2> "$$tmp/cli.err" || exit 1; \
	"$$tmp/moniotrd" -addr 127.0.0.1:0 -port-file "$$tmp/port" -data "$$tmp/spool" \
		-grace 30s > "$$tmp/daemon.log" 2>&1 & \
	pid=$$!; \
	trap 'kill "$$pid" 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	for i in $$(seq 100); do [ -s "$$tmp/port" ] && break; sleep 0.1; done; \
	[ -s "$$tmp/port" ] || { echo "serve-smoke: daemon never listened"; cat "$$tmp/daemon.log"; exit 1; }; \
	port=$$(cat "$$tmp/port"); \
	tar -cf - -C "$$tmp/caps" . | \
		curl -sf -X POST --data-binary @- "http://127.0.0.1:$$port/api/upload?stream=1" \
		> "$$tmp/submit.json" || { echo "serve-smoke: upload failed"; cat "$$tmp/daemon.log"; exit 1; }; \
	grep -q '"id": "job-0001"' "$$tmp/submit.json" || { echo "serve-smoke: bad submit response"; cat "$$tmp/submit.json"; exit 1; }; \
	state=""; \
	for i in $$(seq 600); do \
		state=$$(curl -sf "http://127.0.0.1:$$port/api/jobs/job-0001" | grep -o '"state": "[a-z]*"'); \
		case "$$state" in *done*|*failed*|*canceled*) break;; esac; sleep 0.5; \
	done; \
	case "$$state" in *done*) ;; *) echo "serve-smoke: job ended as $$state"; cat "$$tmp/daemon.log"; exit 1;; esac; \
	curl -sf "http://127.0.0.1:$$port/api/jobs/job-0001/report" > "$$tmp/daemon.json" && \
	cmp "$$tmp/cli.json" "$$tmp/daemon.json" || { echo "serve-smoke: reports differ"; exit 1; }; \
	kill -TERM "$$pid" && wait "$$pid" || { echo "serve-smoke: daemon exited non-zero"; cat "$$tmp/daemon.log"; exit 1; }; \
	echo "serve-smoke: upload->report byte-identical to moniotr -json; clean SIGTERM drain"

# Chaos smoke: a tiny campaign over an impaired network must complete
# with no fatal errors, reproduce byte-identically under the same seed,
# and account for every injected fault in the metrics snapshot.
chaos:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -faults lossy-home -fault-seed 7 \
		-metrics "$$tmp/metrics.json" > "$$tmp/a.out" 2> "$$tmp/a.err" && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -faults lossy-home -fault-seed 7 \
		> "$$tmp/b.out" 2> "$$tmp/b.err" && \
	cmp "$$tmp/a.out" "$$tmp/b.out" && \
	grep -q '"faults_pkts_dropped_total"' "$$tmp/metrics.json" && \
	grep -q '"faults_retransmissions_total"' "$$tmp/metrics.json" && \
	echo "chaos: lossy-home campaign reproducible, faults accounted"

# Reshape smoke: a tiny campaign behind a pad+dummy defense stack must
# complete with no fatal errors, reproduce byte-identically under the
# same seed, differ from the undefended run, and account for every
# defense transform in the metrics snapshot.
reshape-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/moniotr" ./cmd/moniotr && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -reshape pad,dummy -reshape-seed 7 \
		-reshape-budget 0.3 -metrics "$$tmp/metrics.json" > "$$tmp/a.out" 2> "$$tmp/a.err" && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled -reshape pad,dummy -reshape-seed 7 \
		-reshape-budget 0.3 > "$$tmp/b.out" 2> "$$tmp/b.err" && \
	"$$tmp/moniotr" -scale tiny -skip-uncontrolled > "$$tmp/clean.out" 2> "$$tmp/clean.err" && \
	cmp "$$tmp/a.out" "$$tmp/b.out" && \
	! cmp -s "$$tmp/a.out" "$$tmp/clean.out" && \
	grep -q '"reshape_padded_packets_total"' "$$tmp/metrics.json" && \
	grep -q '"reshape_dummy_packets_total"' "$$tmp/metrics.json" && \
	echo "reshape-smoke: defended campaign reproducible, distinct from clean, transforms accounted"
