package intliot_test

import (
	"os"
	"testing"
	"time"

	intliot "github.com/neu-sns/intl-iot-go"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

// throughputFloor is the checked-in perf gate for `make perfguard`:
// single-decode streaming must deliver at least this fraction of
// buffered throughput on the tiny export. The acceptance target is 0.90;
// measured on the reference machine the ratio is ~1.4–1.5 (364 vs
// 245 MB/s — the fold pass decodes once from a mapping while buffered
// copies through arenas), so a regression to the floor means the
// single-decode path lost its entire advantage and then some.
const throughputFloor = 0.90

// TestStreamingThroughputFloor is the perf regression gate. Wall-clock
// measurements are meaningless on loaded CI machines, so it only runs
// when MONIOTR_PERFGUARD=1 (the `make perfguard` target sets it).
func TestStreamingThroughputFloor(t *testing.T) {
	if os.Getenv("MONIOTR_PERFGUARD") == "" {
		t.Skip("set MONIOTR_PERFGUARD=1 (make perfguard) to run the throughput gate")
	}

	cfg := intliot.Config{
		Seed:          1,
		AutomatedReps: 1,
		ManualReps:    1,
		PowerReps:     1,
		IdleHours:     map[string]float64{"US": 1, "GB": 1, "US->GB": 1, "GB->US": 1},
		VPN:           true,
	}
	s, err := intliot.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ingest.Export(dir, s.Pipeline().Runner()); err != nil {
		t.Fatal(err)
	}

	// Best-of-N wall time for each mode; the minimum is the least noisy
	// estimator of achievable throughput.
	const reps = 3
	best := func(run func() int64) (time.Duration, int64) {
		min, bytes := time.Duration(0), int64(0)
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			bytes = run()
			if d := time.Since(t0); min == 0 || d < min {
				min = d
			}
		}
		return min, bytes
	}

	buffered, bytes := best(func() int64 {
		src, err := ingest.Open(dir, ingest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		src.RunControlled(func(*testbed.Experiment) {})
		src.RunIdle(func(*testbed.Experiment) {})
		return src.Report().Bytes
	})
	single, _ := best(func() int64 {
		src, err := ingest.Open(dir, ingest.Options{Stream: true})
		if err != nil {
			t.Fatal(err)
		}
		src.RunSingleDecode(noopFoldSink{})
		return src.Report().Bytes
	})

	mbps := func(d time.Duration) float64 {
		return float64(bytes) / 1e6 / d.Seconds()
	}
	ratio := buffered.Seconds() / single.Seconds()
	t.Logf("buffered %.0f MB/s, single-decode %.0f MB/s, ratio %.2f (floor %.2f)",
		mbps(buffered), mbps(single), ratio, throughputFloor)
	if ratio < throughputFloor {
		t.Errorf("single-decode streaming at %.2f of buffered throughput, floor is %.2f",
			ratio, throughputFloor)
	}
}
