package intliot_test

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"github.com/neu-sns/intl-iot-go/internal/fleet"
	"github.com/neu-sns/intl-iot-go/internal/report"
)

// renderFleet produces the full user-visible output of a fleet run:
// every table's aligned-text rendering plus the canonical JSON
// document — the bytes that must not depend on the worker count.
func renderFleet(t *testing.T, agg *fleet.Aggregate) string {
	t.Helper()
	doc := report.FleetDocument(agg)
	var sb strings.Builder
	for _, e := range doc.Entries {
		if err := e.Table.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	if err := doc.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestFleetByteIdentical is the ISSUE's root regression: the same
// 50-home fleet must render byte-identical report tables for 1, 2 and
// 5 workers.
func TestFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaigns skipped in -short")
	}
	var want string
	for _, workers := range []int{1, 2, 5} {
		agg, err := fleet.Run(context.Background(),
			fleet.Config{Homes: 50, Seed: 7, Workers: workers}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderFleet(t, agg)
		if want == "" {
			want = got
			t.Logf("rendered fleet report: %d bytes", len(got))
			continue
		}
		if got != want {
			t.Errorf("workers=%d rendered different fleet tables", workers)
		}
	}
}

// fleetHeapHighWater runs a fleet and samples the forced-GC heap
// high-water at fold points, the same way the streaming-ingest memory
// guard does.
func fleetHeapHighWater(t *testing.T, homes int) uint64 {
	t.Helper()
	var ms runtime.MemStats
	var max uint64
	_, err := fleet.Run(context.Background(), fleet.Config{
		Homes:   homes,
		Seed:    7,
		Workers: 2,
		Progress: func(done, total int) {
			if done%10 != 0 && done != total {
				return
			}
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > max {
				max = ms.HeapAlloc
			}
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return max
}

// TestFleetHeapSublinear is the ISSUE's memory guard: quadrupling the
// fleet must not remotely quadruple the heap high-water, because homes
// stream through the pipeline and fold into fixed-size sketches.
func TestFleetHeapSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet campaigns skipped in -short")
	}
	small := fleetHeapHighWater(t, 50)
	large := fleetHeapHighWater(t, 200)
	ratio := float64(large) / float64(small)
	t.Logf("heap high-water: 50 homes = %.1f MB, 200 homes = %.1f MB (ratio %.2fx)",
		float64(small)/1e6, float64(large)/1e6, ratio)
	if ratio > 2.0 {
		t.Errorf("heap high-water grew %.2fx for a 4x fleet; want well under 4x (<= 2.0x)", ratio)
	}
}
