// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4–§7), plus the §5.1 entropy calibration and the ablation
// studies called out in DESIGN.md.
//
// Each table bench reuses one shared measurement campaign (built once,
// like the paper's one-month capture) and times the regeneration of its
// table from the collected aggregates; the table itself is printed once
// so the run's output contains the same rows the paper reports.
//
// Run with:
//
//	go test -bench=. -benchmem
package intliot_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	intliot "github.com/neu-sns/intl-iot-go"
	"github.com/neu-sns/intl-iot-go/internal/analysis"
	"github.com/neu-sns/intl-iot-go/internal/devices"
	"github.com/neu-sns/intl-iot-go/internal/entropy"
	"github.com/neu-sns/intl-iot-go/internal/experiments"
	"github.com/neu-sns/intl-iot-go/internal/features"
	"github.com/neu-sns/intl-iot-go/internal/ingest"
	"github.com/neu-sns/intl-iot-go/internal/ml"
	"github.com/neu-sns/intl-iot-go/internal/mud"
	"github.com/neu-sns/intl-iot-go/internal/netx"
	"github.com/neu-sns/intl-iot-go/internal/report"
	"github.com/neu-sns/intl-iot-go/internal/testbed"
)

var (
	studyOnce sync.Once
	study     *intliot.Study
)

// benchConfig is the shared campaign: the paper's repetition *structure*
// (automated ≫ manual, VPN legs, overnight idle) at a scale that keeps
// the full benchmark suite in CI-friendly time.
func benchConfig() intliot.Config {
	return intliot.Config{
		Seed:          1,
		AutomatedReps: 12,
		ManualReps:    3,
		PowerReps:     3,
		IdleHours: map[string]float64{
			"US": 6, "GB": 6, "US->GB": 4, "GB->US": 4,
		},
		VPN:              true,
		UncontrolledDays: 4,
	}
}

// sharedStudy builds the campaign once, instrumented, and writes the
// metrics snapshot to BENCH_pipeline.json so successive benchmark runs
// leave a comparable perf trajectory (stage wall times, experiments/sec,
// worker utilization, synthesis volume).
func sharedStudy(b *testing.B) *intliot.Study {
	b.Helper()
	studyOnce.Do(func() {
		s, err := intliot.NewStudy(benchConfig())
		if err != nil {
			panic(err)
		}
		reg := intliot.NewMetrics()
		s.SetObs(reg)
		s.Run()
		if err := s.RunUncontrolled(); err != nil {
			panic(err)
		}
		if err := reg.WriteJSONFile("BENCH_pipeline.json"); err != nil {
			fmt.Fprintf(os.Stderr, "bench: metrics snapshot: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "bench: wrote campaign metrics to BENCH_pipeline.json")
		}
		study = s
	})
	return study
}

var (
	captureDirOnce sync.Once
	captureDir     string
)

// sharedCaptureDir exports a tiny-scale campaign once, giving the ingest
// benchmarks a real on-disk capture tree to replay.
func sharedCaptureDir(b *testing.B) string {
	b.Helper()
	captureDirOnce.Do(func() {
		cfg := intliot.Config{
			Seed:          1,
			AutomatedReps: 1,
			ManualReps:    1,
			PowerReps:     1,
			IdleHours:     map[string]float64{"US": 1, "GB": 1, "US->GB": 1, "GB->US": 1},
			VPN:           true,
		}
		s, err := intliot.NewStudy(cfg)
		if err != nil {
			panic(err)
		}
		dir, err := os.MkdirTemp("", "moniotr-bench-captures")
		if err != nil {
			panic(err)
		}
		if err := ingest.Export(dir, s.Pipeline().Runner()); err != nil {
			panic(err)
		}
		captureDir = dir
	})
	return captureDir
}

// benchIngest replays the shared capture tree end to end (decode,
// identify, window-slice, deliver) in the given mode; b.SetBytes turns
// the result into capture MB/s.
func benchIngest(b *testing.B, opts ingest.Options) {
	dir := sharedCaptureDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := ingest.Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		src.RunControlled(func(*testbed.Experiment) {})
		src.RunIdle(func(*testbed.Experiment) {})
		if i == 0 {
			b.SetBytes(src.Report().Bytes)
		}
	}
}

// BenchmarkIngestBuffered is the buffer-everything baseline: the whole
// campaign is decoded and held before the first experiment is delivered.
func BenchmarkIngestBuffered(b *testing.B) {
	benchIngest(b, ingest.Options{})
}

// BenchmarkIngestStream replays through the bounded reorder window in
// the legacy two-pass shape; captures are decoded three times (index +
// one replay per leg), trading throughput for an O(window) memory
// high-water mark.
func BenchmarkIngestStream(b *testing.B) {
	benchIngest(b, ingest.Options{Stream: true, TwoPass: true})
}

// noopFoldSink is the fold-mode analogue of the no-op visitor above: it
// absorbs experiments without analysis cost, so the benchmark isolates
// source throughput (decode + sort + run dispatch + merge).
type noopFoldSink struct{}

type noopFoldUnit struct{}

func (noopFoldUnit) Fold(exp *testbed.Experiment)             { exp.Done() }
func (noopFoldSink) NewFoldUnit(bool) experiments.FoldUnit    { return noopFoldUnit{} }
func (noopFoldSink) MergeFoldUnit(bool, experiments.FoldUnit) {}

// BenchmarkIngestSingleDecode replays the capture tree through the
// single-decode fold pass: memory-mapped reads, one decode total, per-run
// accumulators merged in campaign order. This is what `-stream` now runs
// when the consumer supports folding.
func BenchmarkIngestSingleDecode(b *testing.B) {
	dir := sharedCaptureDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := ingest.Open(dir, ingest.Options{Stream: true})
		if err != nil {
			b.Fatal(err)
		}
		src.RunSingleDecode(noopFoldSink{})
		if i == 0 {
			b.SetBytes(src.Report().Bytes)
		}
	}
}

var printedOnce sync.Map

func printOnce(key string, tbl *intliot.Table) {
	if _, loaded := printedOnce.LoadOrStore(key, true); loaded {
		return
	}
	fmt.Println()
	tbl.Render(os.Stdout)
}

func benchTable(b *testing.B, key string, build func() *intliot.Table) {
	s := sharedStudy(b)
	_ = s
	b.ResetTimer()
	var tbl *intliot.Table
	for i := 0; i < b.N; i++ {
		tbl = build()
	}
	b.StopTimer()
	printOnce(key, tbl)
}

func BenchmarkTable1Inventory(b *testing.B) {
	benchTable(b, "t1", func() *intliot.Table { return sharedStudy(b).Table1() })
}

func BenchmarkTable2DestByExperiment(b *testing.B) {
	benchTable(b, "t2", func() *intliot.Table { return sharedStudy(b).Table2() })
}

func BenchmarkTable3DestByCategory(b *testing.B) {
	benchTable(b, "t3", func() *intliot.Table { return sharedStudy(b).Table3() })
}

func BenchmarkTable4TopOrganizations(b *testing.B) {
	benchTable(b, "t4", func() *intliot.Table { return sharedStudy(b).Table4() })
}

func BenchmarkFigure2TrafficSankey(b *testing.B) {
	benchTable(b, "f2", func() *intliot.Table { return sharedStudy(b).Figure2() })
}

func BenchmarkSection51EntropyCalibration(b *testing.B) {
	var cal entropy.Calibration
	var err error
	for i := 0; i < b.N; i++ {
		cal, err = entropy.Calibrate(14, 1) // 14 cipher-suite samples, as in §5.1
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("cal", true); !loaded {
		fmt.Printf("\n§5.1 entropy calibration (paper: TLS 0.85, fernet 0.73, plaintext 0.55)\n")
		fmt.Printf("  TLS-encrypted   H = %.2f (σ=%.3f, min=%.2f, max=%.2f)\n", cal.TLS.Mean, cal.TLS.Std, cal.TLS.Min, cal.TLS.Max)
		fmt.Printf("  fernet-armored  H = %.2f (σ=%.3f, min=%.2f, max=%.2f)\n", cal.Fernet.Mean, cal.Fernet.Std, cal.Fernet.Min, cal.Fernet.Max)
		fmt.Printf("  plaintext HTML  H = %.2f (σ=%.3f, min=%.2f, max=%.2f)\n", cal.Plain.Mean, cal.Plain.Std, cal.Plain.Min, cal.Plain.Max)
	}
}

func BenchmarkTable5EncryptionQuartiles(b *testing.B) {
	benchTable(b, "t5", func() *intliot.Table { return sharedStudy(b).Table5() })
}

func BenchmarkTable6EncryptionByCategory(b *testing.B) {
	benchTable(b, "t6", func() *intliot.Table { return sharedStudy(b).Table6() })
}

func BenchmarkTable7PerDeviceUnencrypted(b *testing.B) {
	// The paper's Table 7 lists ten common devices plus three US-only.
	names := []string{
		"TP-Link Plug", "TP-Link Bulb", "Nest T-stat", "SmartThings Hub",
		"Samsung TV", "Echo Spot", "Echo Plus", "Fire TV", "Echo Dot",
		"Yi Cam", "Samsung Dryer", "Samsung Washer", "D-Link Mov Sensor",
	}
	benchTable(b, "t7", func() *intliot.Table { return sharedStudy(b).Table7(names) })
}

func BenchmarkTable8EncryptionByExperiment(b *testing.B) {
	benchTable(b, "t8", func() *intliot.Table { return sharedStudy(b).Table8() })
}

func BenchmarkTable9InferrableDevices(b *testing.B) {
	benchTable(b, "t9", func() *intliot.Table { return sharedStudy(b).Table9() })
}

func BenchmarkTable10InferrableActivities(b *testing.B) {
	benchTable(b, "t10", func() *intliot.Table { return sharedStudy(b).Table10() })
}

func BenchmarkSection62PIIScan(b *testing.B) {
	benchTable(b, "pii", func() *intliot.Table { return sharedStudy(b).PIIReport() })
}

func BenchmarkTable11IdleDetections(b *testing.B) {
	benchTable(b, "t11", func() *intliot.Table { return sharedStudy(b).Table11(3) })
}

func BenchmarkSection73Uncontrolled(b *testing.B) {
	benchTable(b, "s73", func() *intliot.Table { return sharedStudy(b).UnexpectedReport() })
}

// BenchmarkExtensionDeviceIdentification quantifies §4.4's "support
// parties can learn the types of devices in a household" via a global
// traffic→device classifier.
func BenchmarkExtensionDeviceIdentification(b *testing.B) {
	s := sharedStudy(b)
	var results []analysisIdentifyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results = evalIdentify(s)
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("ident", true); !loaded {
		fmt.Printf("\nExtension: device identification from traffic shape (§4.4 / §8)\n")
		for _, r := range results {
			fmt.Printf("  %-7s devices=%2d samples=%5d device-acc=%.2f category-acc=%.2f\n",
				r.Column, r.Devices, r.Samples, r.DeviceAccuracy, r.CategoryAccuracy)
		}
	}
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationEntropyThresholds sweeps the classification cut points
// against the paper's 0.4/0.8 choice over one device's captured flows.
func BenchmarkAblationEntropyThresholds(b *testing.B) {
	r, err := experiments.NewRunner(experiments.QuickConfig())
	if err != nil {
		b.Fatal(err)
	}
	// The microwave's partly-encrypted proprietary telemetry exercises
	// the entropy path (no recognizable protocol framing), so thresholds
	// actually matter.
	var flows []*netx.Flow
	slot, _ := r.US.Slot("GE Microwave")
	clock := testbed.StudyEpoch
	for rep := 0; rep < 3; rep++ {
		exp := r.US.RunPower(slot, false, clock, rep)
		flows = append(flows, netx.AssembleFlows(exp.Packets)...)
		clock = exp.End
		for ai := range slot.Inst.Profile.Activities {
			act := &slot.Inst.Profile.Activities[ai]
			iexp := r.US.RunInteraction(slot, act, act.Methods[0], false, clock, rep)
			flows = append(flows, netx.AssembleFlows(iexp.Packets)...)
			clock = iexp.End
		}
	}
	variants := []entropy.Thresholds{
		{Encrypted: 0.8, Unencrypted: 0.4, MinPayload: 16}, // paper
		{Encrypted: 0.7, Unencrypted: 0.3, MinPayload: 16},
		{Encrypted: 0.9, Unencrypted: 0.5, MinPayload: 16},
		{Encrypted: 0.85, Unencrypted: 0.2, MinPayload: 16},
	}
	b.ResetTimer()
	results := make(map[string][4]int)
	for i := 0; i < b.N; i++ {
		for _, th := range variants {
			var counts [4]int
			for _, f := range flows {
				counts[entropy.ClassifyFlow(f, th).Class]++
			}
			results[fmt.Sprintf("%.2f/%.2f", th.Unencrypted, th.Encrypted)] = counts
		}
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("ab-th", true); !loaded {
		fmt.Printf("\nAblation: entropy thresholds (unknown/enc/unenc/media flow counts)\n")
		for _, th := range variants {
			k := fmt.Sprintf("%.2f/%.2f", th.Unencrypted, th.Encrypted)
			c := results[k]
			fmt.Printf("  thresholds %s: unknown=%d encrypted=%d unencrypted=%d media=%d\n",
				k, c[entropy.ClassUnknown], c[entropy.ClassEncrypted], c[entropy.ClassUnencrypted], c[entropy.ClassMedia])
		}
	}
}

// BenchmarkAblationTrafficUnitGap sweeps the §7.1 segmentation gap.
func BenchmarkAblationTrafficUnitGap(b *testing.B) {
	r, err := experiments.NewRunner(experiments.QuickConfig())
	if err != nil {
		b.Fatal(err)
	}
	slot, _ := r.US.Slot("ZModo Doorbell")
	exp := r.US.RunIdle(slot, false, testbed.StudyEpoch, time.Hour, 0)
	gaps := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}
	b.ResetTimer()
	counts := map[time.Duration]int{}
	for i := 0; i < b.N; i++ {
		for _, g := range gaps {
			counts[g] = len(features.Segment(exp.Packets, g))
		}
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("ab-gap", true); !loaded {
		fmt.Printf("\nAblation: traffic-unit gap vs unit count (paper gap: 2s; %d idle events)\n", len(exp.IdleEvents))
		for _, g := range gaps {
			fmt.Printf("  gap %6s: %d units\n", g, counts[g])
		}
	}
}

// BenchmarkAblationForestSize compares ensemble sizes on a
// representative device's activity dataset.
func BenchmarkAblationForestSize(b *testing.B) {
	ds := deviceDataset(b, "Samsung TV", features.SetPaper)
	sizes := []int{1, 5, 25, 100}
	b.ResetTimer()
	f1 := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, n := range sizes {
			res := ml.CrossValidate(ds, ml.CVConfig{
				TrainFrac: 0.7, Repeats: 3, Seed: 42,
				Forest: ml.ForestConfig{NumTrees: n},
			})
			f1[n] = res.DeviceF1
		}
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("ab-forest", true); !loaded {
		fmt.Printf("\nAblation: forest size vs device F1 (Samsung TV, %d samples)\n", ds.NumExamples())
		for _, n := range sizes {
			fmt.Printf("  %3d trees: F1 = %.3f\n", n, f1[n])
		}
	}
}

// BenchmarkAblationFeatureSets compares the paper's timing-only features
// against the extended set.
func BenchmarkAblationFeatureSets(b *testing.B) {
	sets := []features.Set{features.SetPaper, features.SetExtended}
	names := []string{"paper (timing-only)", "extended (+volume)"}
	b.ResetTimer()
	f1 := map[features.Set]float64{}
	for i := 0; i < b.N; i++ {
		for _, set := range sets {
			ds := deviceDataset(b, "Echo Dot", set)
			res := ml.CrossValidate(ds, ml.CVConfig{
				TrainFrac: 0.7, Repeats: 3, Seed: 42,
				Forest: ml.ForestConfig{NumTrees: 15},
			})
			f1[set] = res.DeviceF1
		}
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("ab-feat", true); !loaded {
		fmt.Printf("\nAblation: feature sets vs device F1 (Echo Dot)\n")
		for i, set := range sets {
			fmt.Printf("  %-22s F1 = %.3f\n", names[i], f1[set])
		}
	}
}

// deviceDataset builds a labelled dataset for one US device by running
// its controlled experiments.
func deviceDataset(b *testing.B, device string, set features.Set) *ml.Dataset {
	b.Helper()
	r, err := experiments.NewRunner(experiments.Config{
		Seed: 1, AutomatedReps: 10, ManualReps: 3, PowerReps: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	slot, ok := r.US.Slot(device)
	if !ok {
		b.Fatalf("device %q not in US lab", device)
	}
	ds := &ml.Dataset{FeatureNames: features.Names(set)}
	clock := testbed.StudyEpoch
	for rep := 0; rep < 3; rep++ {
		exp := r.US.RunPower(slot, false, clock, rep)
		ds.Features = append(ds.Features, features.Vector(exp.Packets, set))
		ds.Labels = append(ds.Labels, "power")
		clock = exp.End.Add(30 * time.Second)
	}
	for ai := range slot.Inst.Profile.Activities {
		act := &slot.Inst.Profile.Activities[ai]
		for _, m := range act.Methods {
			reps := 10
			if act.Manual || m == devices.MethodLocal {
				reps = 3
			}
			for rep := 0; rep < reps; rep++ {
				exp := r.US.RunInteraction(slot, act, m, false, clock, rep)
				ds.Features = append(ds.Features, features.Vector(exp.Packets, set))
				ds.Labels = append(ds.Labels, exp.Activity)
				clock = exp.End.Add(15 * time.Second)
			}
		}
	}
	return ds
}

// Sanity check that the report package stays wired to the bench harness.
var _ = report.Table1

// BenchmarkExtensionMUDCompliance exercises the RFC 8520 extension:
// profile generation plus compliance checking for every catalog device.
func BenchmarkExtensionMUDCompliance(b *testing.B) {
	r, err := experiments.NewRunner(experiments.QuickConfig())
	if err != nil {
		b.Fatal(err)
	}
	type capture struct {
		doc  *mud.Document
		pkts []*netx.Packet
	}
	var caps []capture
	for _, slot := range r.US.Slots() {
		exp := r.US.RunPower(slot, false, testbed.StudyEpoch, 0)
		caps = append(caps, capture{mud.Generate(slot.Inst.Profile), exp.Packets})
	}
	b.ResetTimer()
	violations := 0
	for i := 0; i < b.N; i++ {
		violations = 0
		for _, c := range caps {
			violations += len(mud.NewChecker(c.doc).Check(c.pkts))
		}
	}
	b.StopTimer()
	if _, loaded := printedOnce.LoadOrStore("mud", true); !loaded {
		fmt.Printf("\nExtension: MUD compliance over %d US devices (direct egress): %d violations\n",
			len(caps), violations)
	}
}

// local aliases so the identification bench reads cleanly.
type analysisIdentifyResult = analysis.IdentifyResult

func evalIdentify(s *intliot.Study) []analysisIdentifyResult {
	return s.Pipeline().Identify.Evaluate(ml.CVConfig{
		TrainFrac: 0.7, Repeats: 3, Seed: 42,
		Forest: ml.ForestConfig{NumTrees: 15},
	})
}
