package intliot

import (
	"strings"
	"testing"
)

// renderAll flattens every report table into one string; byte-equality of
// two renders is the reproducibility contract the fault engine must keep.
func renderAll(s *Study) string {
	var sb strings.Builder
	for _, tbl := range []*Table{
		s.Headline(), s.Table2(), s.Table3(), s.Table4(), s.Figure2(),
		s.Table5(), s.Table6(), s.Table7(nil), s.Table8(),
		s.EncMetricsReport(),
		s.Table9(), s.Table10(), s.Table11(1), s.PIIReport(),
	} {
		sb.WriteString(tbl.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func tinyFaultConfig(profile string, seed int64) Config {
	return Config{
		Seed:          1,
		AutomatedReps: 2,
		ManualReps:    1,
		PowerReps:     1,
		IdleHours:     map[string]float64{"US": 0.5},
		FaultProfile:  profile,
		FaultSeed:     seed,
	}
}

func runTiny(t *testing.T, profile string, seed int64) string {
	t.Helper()
	s, err := NewStudy(tinyFaultConfig(profile, seed))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	return renderAll(s)
}

// The two reproducibility guarantees of the impairment engine, end to
// end through the public API: a zero-impairment profile changes nothing,
// and a fixed profile+seed is byte-identical run to run.
func TestFaultDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full studies skipped in -short")
	}
	base := runTiny(t, "", 0)
	clean := runTiny(t, "clean", 0)
	if base != clean {
		t.Error("clean profile output differs from no-faults run")
	}

	lossyA := runTiny(t, "lossy-home", 42)
	lossyB := runTiny(t, "lossy-home", 42)
	if lossyA != lossyB {
		t.Error("same profile and seed produced different tables")
	}
	if lossyA == base {
		t.Error("lossy-home output identical to clean run; faults had no effect")
	}

	lossyC := runTiny(t, "lossy-home", 43)
	if lossyC == lossyA {
		t.Error("different fault seeds produced identical tables")
	}
}
